package sim

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"automatazoo/internal/automata"
	"automatazoo/internal/charset"
)

// literalAutomaton returns an automaton matching the literal anywhere in the
// stream (head is all-input), reporting code on the last byte.
func literalAutomaton(lit string, code int32) *automata.Automaton {
	b := automata.NewBuilder()
	var prev automata.StateID = automata.NoState
	for i := 0; i < len(lit); i++ {
		st := automata.StartNone
		if i == 0 {
			st = automata.StartAllInput
		}
		id := b.AddSTE(charset.Single(lit[i]), st)
		if prev != automata.NoState {
			b.AddEdge(prev, id)
		}
		prev = id
	}
	b.SetReport(prev, code)
	return b.MustBuild()
}

// naiveCount counts occurrences of lit in input (overlapping included),
// the ground truth for literal automata.
func naiveCount(input, lit string) int64 {
	var n int64
	for i := 0; i+len(lit) <= len(input); i++ {
		if input[i:i+len(lit)] == lit {
			n++
		}
	}
	return n
}

func TestLiteralMatch(t *testing.T) {
	a := literalAutomaton("abc", 1)
	e := New(a)
	e.CollectReports = true
	e.Run([]byte("xxabcxxabcabc"))
	reps := e.Reports()
	if len(reps) != 3 {
		t.Fatalf("reports=%d want 3", len(reps))
	}
	wantOffsets := []int64{4, 9, 12}
	for i, r := range reps {
		if r.Offset != wantOffsets[i] {
			t.Errorf("report %d at offset %d, want %d", i, r.Offset, wantOffsets[i])
		}
		if r.Code != 1 {
			t.Errorf("report code %d", r.Code)
		}
	}
}

func TestOverlappingMatches(t *testing.T) {
	a := literalAutomaton("aa", 0)
	e := New(a)
	if got := e.CountReports([]byte("aaaa")); got != 3 {
		t.Fatalf("overlapping count=%d want 3", got)
	}
}

func TestStartOfData(t *testing.T) {
	// ^ab : anchored, start-of-data head.
	b := automata.NewBuilder()
	s0 := b.AddSTE(charset.Single('a'), automata.StartOfData)
	s1 := b.AddSTE(charset.Single('b'), automata.StartNone)
	b.AddEdge(s0, s1)
	b.SetReport(s1, 0)
	a := b.MustBuild()
	e := New(a)
	if got := e.CountReports([]byte("abab")); got != 1 {
		t.Fatalf("anchored count=%d want 1", got)
	}
	if got := e.CountReports([]byte("xab")); got != 0 {
		t.Fatalf("anchored count=%d want 0", got)
	}
}

func TestResetClearsState(t *testing.T) {
	a := literalAutomaton("ab", 0)
	e := New(a)
	e.Run([]byte("a")) // 'a' active; 'b' enabled
	e.Reset()
	if got := e.CountReports([]byte("b")); got != 0 {
		t.Fatal("stale frontier survived Reset")
	}
	if e.Stats().Symbols != 1 {
		t.Fatalf("stats not from fresh run: %+v", e.Stats())
	}
}

func TestStreamingAcrossRunCalls(t *testing.T) {
	a := literalAutomaton("ab", 0)
	e := New(a)
	e.Run([]byte("xa"))
	e.Run([]byte("b"))
	if e.Stats().Reports != 1 {
		t.Fatalf("match across Run boundary lost: %+v", e.Stats())
	}
}

func TestAlternationViaFanout(t *testing.T) {
	// a(b|c) as homogeneous fan-out.
	b := automata.NewBuilder()
	s := b.AddSTE(charset.Single('a'), automata.StartAllInput)
	x := b.AddSTE(charset.Single('b'), automata.StartNone)
	y := b.AddSTE(charset.Single('c'), automata.StartNone)
	b.AddEdge(s, x)
	b.AddEdge(s, y)
	b.SetReport(x, 1)
	b.SetReport(y, 2)
	a := b.MustBuild()
	e := New(a)
	e.CollectReports = true
	e.Run([]byte("abac"))
	reps := e.Reports()
	if len(reps) != 2 || reps[0].Code != 1 || reps[1].Code != 2 {
		t.Fatalf("reports=%v", reps)
	}
}

func TestSelfLoop(t *testing.T) {
	// a+b : 'a' state loops on itself.
	b := automata.NewBuilder()
	s := b.AddSTE(charset.Single('a'), automata.StartAllInput)
	b.AddEdge(s, s)
	r := b.AddSTE(charset.Single('b'), automata.StartNone)
	b.AddEdge(s, r)
	b.SetReport(r, 0)
	a := b.MustBuild()
	e := New(a)
	if got := e.CountReports([]byte("aaab")); got != 1 {
		t.Fatalf("a+b count=%d want 1", got)
	}
	if got := e.CountReports([]byte("b")); got != 0 {
		t.Fatalf("bare b matched: %d", got)
	}
}

func TestAllInputStartWithIncomingEdgeActivatesOnce(t *testing.T) {
	// State is both an all-input start and its own successor; it must
	// activate (and report) at most once per symbol.
	b := automata.NewBuilder()
	s := b.AddSTE(charset.Single('a'), automata.StartAllInput)
	b.AddEdge(s, s)
	b.SetReport(s, 0)
	a := b.MustBuild()
	e := New(a)
	if got := e.CountReports([]byte("aa")); got != 2 {
		t.Fatalf("reports=%d want 2 (once per symbol)", got)
	}
}

func TestCounterRollover(t *testing.T) {
	// Count three 'x' activations, then report and roll over.
	b := automata.NewBuilder()
	s := b.AddSTE(charset.Single('x'), automata.StartAllInput)
	c := b.AddCounter(3, automata.CountRollover)
	b.AddEdge(s, c)
	b.SetReport(c, 9)
	a := b.MustBuild()
	e := New(a)
	e.CollectReports = true
	e.Run([]byte("xxxxxxx")) // 7 x's -> fires at 3rd and 6th
	reps := e.Reports()
	if len(reps) != 2 {
		t.Fatalf("counter reports=%d want 2", len(reps))
	}
	if reps[0].Offset != 2 || reps[1].Offset != 5 {
		t.Fatalf("counter offsets=%v", reps)
	}
	if reps[0].Code != 9 {
		t.Fatalf("counter code=%d", reps[0].Code)
	}
}

func TestCounterLatch(t *testing.T) {
	b := automata.NewBuilder()
	s := b.AddSTE(charset.Single('x'), automata.StartAllInput)
	c := b.AddCounter(2, automata.CountLatch)
	b.AddEdge(s, c)
	b.SetReport(c, 0)
	a := b.MustBuild()
	e := New(a)
	if got := e.CountReports([]byte("xxxxxx")); got != 1 {
		t.Fatalf("latched counter reports=%d want 1", got)
	}
}

func TestCounterEnablesSuccessor(t *testing.T) {
	// After two 'a's, the counter fires and enables a 'b' detector.
	b := automata.NewBuilder()
	s := b.AddSTE(charset.Single('a'), automata.StartAllInput)
	c := b.AddCounter(2, automata.CountRollover)
	b.AddEdge(s, c)
	r := b.AddSTE(charset.Single('b'), automata.StartNone)
	b.AddEdge(c, r)
	b.SetReport(r, 0)
	a := b.MustBuild()
	e := New(a)
	if got := e.CountReports([]byte("aab")); got != 1 {
		t.Fatalf("counter-enabled match=%d want 1", got)
	}
	if got := e.CountReports([]byte("ab")); got != 0 {
		t.Fatalf("premature counter fire: %d", got)
	}
}

func TestCounterSinglePulsePerCycle(t *testing.T) {
	// Two distinct states pulse the same counter in the same cycle; the AP
	// model increments once per cycle.
	b := automata.NewBuilder()
	s1 := b.AddSTE(charset.Single('x'), automata.StartAllInput)
	s2 := b.AddSTE(charset.Single('x'), automata.StartAllInput)
	c := b.AddCounter(2, automata.CountRollover)
	b.AddEdge(s1, c)
	b.AddEdge(s2, c)
	b.SetReport(c, 0)
	a := b.MustBuild()
	e := New(a)
	if got := e.CountReports([]byte("x")); got != 0 {
		t.Fatalf("counter double-pulsed in one cycle: %d", got)
	}
	if got := e.CountReports([]byte("xx")); got != 1 {
		t.Fatalf("counter fire count=%d want 1", got)
	}
}

func TestStats(t *testing.T) {
	a := literalAutomaton("ab", 0)
	e := New(a)
	st := e.Run([]byte("abab"))
	if st.Symbols != 4 {
		t.Fatalf("symbols=%d", st.Symbols)
	}
	// 'a' (start) matches at 0 and 2; 'b' matches at 1 and 3 → Active=4.
	if st.Active != 4 {
		t.Fatalf("active=%d want 4", st.Active)
	}
	// 'b' enabled at offsets 1 and 3 → Enabled=2.
	if st.Enabled != 2 {
		t.Fatalf("enabled=%d want 2", st.Enabled)
	}
	if st.Reports != 2 {
		t.Fatalf("reports=%d", st.Reports)
	}
	if st.ActiveAvg() != 1.0 || st.EnabledAvg() != 0.5 || st.ReportRate() != 0.5 {
		t.Fatalf("averages wrong: %+v", st)
	}
}

func TestStatsZeroSymbols(t *testing.T) {
	var s Stats
	if s.ActiveAvg() != 0 || s.EnabledAvg() != 0 || s.ReportRate() != 0 {
		t.Fatal("zero-symbol averages should be 0")
	}
}

func TestCodeCounts(t *testing.T) {
	b := automata.NewBuilder()
	x := b.AddSTE(charset.Single('x'), automata.StartAllInput)
	y := b.AddSTE(charset.Single('y'), automata.StartAllInput)
	b.SetReport(x, 1)
	b.SetReport(y, 2)
	a := b.MustBuild()
	e := New(a)
	e.CodeCounts = map[int32]int64{}
	e.Run([]byte("xxy"))
	if e.CodeCounts[1] != 2 || e.CodeCounts[2] != 1 {
		t.Fatalf("code counts=%v", e.CodeCounts)
	}
}

func TestMaxReports(t *testing.T) {
	a := literalAutomaton("a", 0)
	e := New(a)
	e.CollectReports = true
	e.MaxReports = 2
	e.Run(bytes.Repeat([]byte("a"), 10))
	if len(e.Reports()) != 2 {
		t.Fatalf("collected=%d want 2", len(e.Reports()))
	}
	if e.Stats().Reports != 10 {
		t.Fatalf("stats.Reports=%d want 10 (counting unaffected)", e.Stats().Reports)
	}
}

func TestOnReportCallback(t *testing.T) {
	a := literalAutomaton("z", 5)
	e := New(a)
	var got []Report
	e.OnReport = func(r Report) { got = append(got, r) }
	e.Run([]byte("zz"))
	if len(got) != 2 || got[0].Code != 5 {
		t.Fatalf("callback reports=%v", got)
	}
}

// Property: for random literals and inputs over a small alphabet, the
// engine's report count equals the naive overlapping-substring count.
func TestQuickLiteralEquivalence(t *testing.T) {
	f := func(litRaw []byte, inputRaw []byte) bool {
		if len(litRaw) == 0 {
			return true
		}
		lit := make([]byte, 1+len(litRaw)%4)
		for i := range lit {
			lit[i] = 'a' + litRaw[i%len(litRaw)]%3
		}
		input := make([]byte, len(inputRaw))
		for i := range input {
			input[i] = 'a' + inputRaw[i]%3
		}
		a := literalAutomaton(string(lit), 0)
		e := New(a)
		return e.CountReports(input) == naiveCount(string(input), string(lit))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Active and Enabled are monotone in input length and Enabled
// never undercounts matches from non-start states.
func TestQuickStatsSanity(t *testing.T) {
	f := func(inputRaw []byte) bool {
		input := make([]byte, len(inputRaw))
		for i := range input {
			input[i] = 'a' + inputRaw[i]%3
		}
		a := literalAutomaton("ab", 0)
		e := New(a)
		st := e.Run(input)
		return st.Symbols == int64(len(input)) &&
			st.Active >= st.Reports &&
			st.Enabled >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLargeFanInDedup(t *testing.T) {
	// Many states enabling the same successor in one cycle: successor must
	// appear once in the frontier (Enabled counts it once).
	b := automata.NewBuilder()
	var heads []automata.StateID
	for i := 0; i < 10; i++ {
		heads = append(heads, b.AddSTE(charset.Single('a'), automata.StartAllInput))
	}
	tail := b.AddSTE(charset.Single('b'), automata.StartNone)
	for _, h := range heads {
		b.AddEdge(h, tail)
	}
	b.SetReport(tail, 0)
	a := b.MustBuild()
	e := New(a)
	st := e.Run([]byte("ab"))
	if st.Enabled != 1 {
		t.Fatalf("enabled=%d want 1 (dedup)", st.Enabled)
	}
	if st.Reports != 1 {
		t.Fatalf("reports=%d want 1", st.Reports)
	}
}

func TestGenerationWraparound(t *testing.T) {
	// Force many Reset cycles to make sure generation bookkeeping stays
	// consistent (wraparound path is exercised only logically here).
	a := literalAutomaton("ab", 0)
	e := New(a)
	for i := 0; i < 1000; i++ {
		if got := e.CountReports([]byte("ab")); got != 1 {
			t.Fatalf("iteration %d: got %d", i, got)
		}
	}
}

func TestEngineIndependentInstances(t *testing.T) {
	a := literalAutomaton("ab", 0)
	e1 := New(a)
	e2 := New(a)
	e1.Run([]byte("a"))
	if got := e2.CountReports([]byte("b")); got != 0 {
		t.Fatal("engines share runtime state")
	}
}

func TestDotNewlineIndependence(t *testing.T) {
	// Class with 255 symbols (NotNewline) behaves correctly in start index.
	b := automata.NewBuilder()
	s := b.AddSTE(charset.NotNewline(), automata.StartAllInput)
	b.SetReport(s, 0)
	a := b.MustBuild()
	e := New(a)
	if got := e.CountReports([]byte("a\nb")); got != 2 {
		t.Fatalf("notnewline count=%d want 2", got)
	}
}

func TestMultiPatternMerged(t *testing.T) {
	b := automata.NewBuilder()
	b.Merge(literalAutomaton("cat", 1), 0)
	b.Merge(literalAutomaton("dog", 2), 0)
	a := b.MustBuild()
	e := New(a)
	e.CollectReports = true
	e.Run([]byte("the cat saw a dog catnap"))
	var cats, dogs int
	for _, r := range e.Reports() {
		switch r.Code {
		case 1:
			cats++
		case 2:
			dogs++
		}
	}
	if cats != 2 || dogs != 1 {
		t.Fatalf("cats=%d dogs=%d", cats, dogs)
	}
}

func TestLongInputThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("long input")
	}
	a := literalAutomaton("needle", 0)
	e := New(a)
	input := []byte(strings.Repeat("haystack", 10000) + "needle")
	if got := e.CountReports(input); got != 1 {
		t.Fatalf("got %d", got)
	}
}
