package sim_test

import (
	"reflect"
	"slices"
	"testing"

	"automatazoo/internal/automata"
	"automatazoo/internal/charset"
	"automatazoo/internal/sim"
)

// streamAutomaton mixes every stateful feature the capture/restore
// contract must carry: an all-input start, a multi-state chain (frontier
// depth), a latching counter, and a rollover counter chained off it.
func streamAutomaton() *automata.Automaton {
	b := automata.NewBuilder()
	s0 := b.AddSTE(charset.Single('a'), automata.StartAllInput)
	s1 := b.AddSTE(charset.Single('b'), automata.StartNone)
	s2 := b.AddSTE(charset.Single('c'), automata.StartNone)
	b.AddEdge(s0, s1)
	b.AddEdge(s1, s2)
	b.SetReport(s2, 1)

	c0 := b.AddCounter(3, automata.CountLatch)
	b.AddEdge(s0, c0)
	b.SetReport(c0, 2)
	c1 := b.AddCounter(2, automata.CountRollover)
	b.AddEdge(c0, c1)
	out := b.AddSTE(charset.All(), automata.StartNone)
	b.AddEdge(c1, out)
	b.SetReport(out, 3)

	sod := b.AddSTE(charset.All(), automata.StartOfData)
	b.SetReport(sod, 4)
	return b.MustBuild()
}

func streamInput(n int) []byte {
	out := make([]byte, n)
	pat := []byte("aabcaacbabcaba")
	for i := range out {
		out[i] = pat[i%len(pat)]
	}
	return out
}

// TestCaptureRestoreResumesExactly: scanning a prefix, capturing, and
// restoring into a FRESH engine must continue the logical stream exactly —
// same reports (absolute offsets), same summed stats, same final state.
func TestCaptureRestoreResumesExactly(t *testing.T) {
	a := streamAutomaton()
	input := streamInput(200)
	for _, cut := range []int{0, 1, 7, 100, 199, 200} {
		ref := sim.New(a)
		ref.CollectReports = true
		refStats := ref.Run(input)

		head := sim.New(a)
		head.CollectReports = true
		headStats := head.Run(input[:cut])
		snap := head.CaptureState()

		tail := sim.New(a)
		tail.CollectReports = true
		tail.RestoreState(snap)
		tailStats := tail.Run(input[cut:])

		var got []sim.Report
		got = append(got, head.Reports()...)
		got = append(got, tail.Reports()...)
		if !slices.Equal(got, ref.Reports()) {
			t.Fatalf("cut %d: report streams differ: ref %d, stitched %d", cut, len(ref.Reports()), len(got))
		}
		sum := sim.Stats{
			Symbols:       headStats.Symbols + tailStats.Symbols,
			Enabled:       headStats.Enabled + tailStats.Enabled,
			Active:        headStats.Active + tailStats.Active,
			CounterPulses: headStats.CounterPulses + tailStats.CounterPulses,
			Reports:       headStats.Reports + tailStats.Reports,
		}
		if sum != refStats {
			t.Fatalf("cut %d: stats differ: ref %+v, stitched %+v", cut, refStats, sum)
		}
		if !reflect.DeepEqual(tail.CaptureState(), ref.CaptureState()) {
			t.Fatalf("cut %d: final stream states differ:\n ref  %+v\n tail %+v", cut, ref.CaptureState(), tail.CaptureState())
		}
	}
}

// TestFrontierSnapshotCanonical: snapshots are sorted sets, equal for
// engines at the same stream position regardless of construction order.
func TestFrontierSnapshotCanonical(t *testing.T) {
	a := streamAutomaton()
	e := sim.New(a)
	e.Run(streamInput(50))
	f := e.FrontierSnapshot()
	if !slices.IsSorted(f) {
		t.Fatalf("snapshot not sorted: %v", f)
	}
	// Mutating the snapshot must not touch the engine.
	for i := range f {
		f[i] = 0
	}
	g := e.FrontierSnapshot()
	if !slices.IsSorted(g) {
		t.Fatalf("snapshot aliased engine state: %v", g)
	}
}

// TestSetOffsetSuppressesStartOfData: an engine positioned mid-stream
// must not arm StartOfData states and must stamp absolute offsets on its
// reports.
func TestSetOffsetSuppressesStartOfData(t *testing.T) {
	b := automata.NewBuilder()
	sod := b.AddSTE(charset.All(), automata.StartOfData)
	b.SetReport(sod, 9)
	s := b.AddSTE(charset.Single('x'), automata.StartAllInput)
	b.SetReport(s, 1)
	a := b.MustBuild()

	e := sim.New(a)
	e.CollectReports = true
	e.SetOffset(100)
	for _, c := range []byte("axa") {
		e.Step(c)
	}
	reps := e.Reports()
	if len(reps) != 1 || reps[0].Code != 1 || reps[0].Offset != 101 {
		t.Fatalf("want exactly one code-1 report at offset 101, got %+v", reps)
	}
}

// TestRestoreStateIsSelfContained: the snapshot shares no storage with
// the engine it came from — capturing, resetting the source, and
// restoring elsewhere still resumes correctly.
func TestRestoreStateIsSelfContained(t *testing.T) {
	a := streamAutomaton()
	input := streamInput(120)
	src := sim.New(a)
	src.Run(input[:60])
	snap := src.CaptureState()
	src.Reset()
	src.Run([]byte("zzzz")) // scribble on the source after capture

	ref := sim.New(a)
	ref.CollectReports = true
	ref.Run(input)

	dst := sim.New(a)
	dst.CollectReports = true
	dst.RestoreState(snap)
	dst.Run(input[60:])
	if !reflect.DeepEqual(dst.CaptureState(), ref.CaptureState()) {
		t.Fatal("restored engine diverged from the continuous reference")
	}
}
