package sim

import (
	"testing"

	"automatazoo/internal/telemetry"
)

// TestNilTelemetryZeroAllocs is the benchmark guard for the disabled
// telemetry path: with no tracer, profile, registry, or span collector
// attached, Run must not allocate at all once the engine is warm (the
// per-run "sim.run" phase span reduces to a nil-receiver no-op).
func TestNilTelemetryZeroAllocs(t *testing.T) {
	a := literalAutomaton("abc", 1)
	e := New(a)
	e.SetSpans(nil) // explicit: the disabled span path is part of the guard
	input := []byte("xxabcxxabcabcxaxbxcabxcabc")
	// Warm: establish frontier slice capacities.
	e.Reset()
	e.Run(input)
	allocs := testing.AllocsPerRun(200, func() {
		e.Reset()
		e.Run(input)
	})
	if allocs != 0 {
		t.Fatalf("nil-telemetry Run allocated %.1f times per run, want 0", allocs)
	}
}

func TestStateProfileCounts(t *testing.T) {
	a := literalAutomaton("ab", 7)
	e := New(a)
	prof := e.EnableProfile()
	e.Run([]byte("abab"))
	// State 0 ('a', all-input start) matches at offsets 0 and 2; state 1
	// ('b') is enabled after each 'a' and matches at offsets 1 and 3.
	if got := prof.Activations[0]; got != 2 {
		t.Errorf("state 0 activations = %d, want 2", got)
	}
	if got := prof.Activations[1]; got != 2 {
		t.Errorf("state 1 activations = %d, want 2", got)
	}
	if got := prof.Enables[1]; got != 2 {
		t.Errorf("state 1 enables = %d, want 2", got)
	}
	if total := prof.TotalActivations(); total != 4 {
		t.Errorf("total activations = %d, want 4", total)
	}
	top := prof.TopK(10, nil)
	if len(top) != 2 {
		t.Fatalf("TopK entries = %d, want 2", len(top))
	}
	if top[0].Share+top[1].Share < 0.999 {
		t.Errorf("shares should sum to 1: %v", top)
	}
	// The profile accumulates across Reset and zeroes on its own Reset.
	e.Reset()
	e.Run([]byte("ab"))
	if got := prof.Activations[0]; got != 3 {
		t.Errorf("accumulated activations = %d, want 3", got)
	}
	prof.Reset()
	if got := prof.TotalActivations(); got != 0 {
		t.Errorf("after profile reset total = %d, want 0", got)
	}
}

// recordingTracer counts events per kind.
type recordingTracer struct {
	symbols, activates, reports, cache int
	lastReportState                    uint32
	lastReportCode                     int32
}

func (r *recordingTracer) OnSymbol(offset int64, b byte)     { r.symbols++ }
func (r *recordingTracer) OnActivate(offset int64, s uint32) { r.activates++ }
func (r *recordingTracer) OnReport(offset int64, s uint32, c int32) {
	r.reports++
	r.lastReportState = s
	r.lastReportCode = c
}
func (r *recordingTracer) OnCacheEvent(offset int64, comp int, k telemetry.CacheEventKind) {
	r.cache++
}

func TestTracerEventStream(t *testing.T) {
	a := literalAutomaton("ab", 9)
	e := New(a)
	tr := &recordingTracer{}
	e.SetTracer(tr)
	st := e.Run([]byte("abxab"))
	if tr.symbols != 5 {
		t.Errorf("symbol events = %d, want 5", tr.symbols)
	}
	if int64(tr.activates) != st.Active {
		t.Errorf("activate events = %d, want %d", tr.activates, st.Active)
	}
	if int64(tr.reports) != st.Reports || tr.reports != 2 {
		t.Errorf("report events = %d, want 2", tr.reports)
	}
	if tr.lastReportCode != 9 {
		t.Errorf("last report code = %d, want 9", tr.lastReportCode)
	}
	// Detaching stops the stream.
	e.SetTracer(nil)
	e.Reset()
	e.Run([]byte("ab"))
	if tr.symbols != 5 {
		t.Errorf("detached tracer still receiving events")
	}
}

func TestRegistryPublishing(t *testing.T) {
	a := literalAutomaton("ab", 1)
	e := New(a)
	reg := telemetry.NewRegistry()
	e.SetRegistry(reg)
	e.Run([]byte("abab"))
	if got := reg.Counter("sim.symbols").Value(); got != 4 {
		t.Errorf("sim.symbols = %d, want 4", got)
	}
	if got := reg.Counter("sim.reports").Value(); got != 2 {
		t.Errorf("sim.reports = %d, want 2", got)
	}
	// Second Run on the same stream publishes only the delta.
	e.Run([]byte("ab"))
	if got := reg.Counter("sim.symbols").Value(); got != 6 {
		t.Errorf("after second run sim.symbols = %d, want 6", got)
	}
	// Reset flushes pending bare-Step stats rather than dropping them.
	e.Reset()
	e.Step('a')
	e.Step('b')
	e.Reset()
	if got := reg.Counter("sim.symbols").Value(); got != 8 {
		t.Errorf("after bare steps sim.symbols = %d, want 8", got)
	}
	// Frontier histogram observed one value per symbol.
	if got := reg.Histogram("sim.frontier", nil).Count(); got != 8 {
		t.Errorf("frontier observations = %d, want 8", got)
	}
}

// TestStatsZeroInput is the divide-by-zero hardening audit: every rate
// accessor must return 0, not NaN, on an empty run.
func TestStatsZeroInput(t *testing.T) {
	cases := []struct {
		name string
		fn   func(Stats) float64
	}{
		{"ActiveAvg", Stats.ActiveAvg},
		{"EnabledAvg", Stats.EnabledAvg},
		{"ReportRate", Stats.ReportRate},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.fn(Stats{}); got != 0 {
				t.Errorf("%s on zero Stats = %v, want 0", tc.name, got)
			}
		})
	}
	// And on a live engine that consumed nothing.
	e := New(literalAutomaton("x", 0))
	st := e.Run(nil)
	if st.ActiveAvg() != 0 || st.EnabledAvg() != 0 || st.ReportRate() != 0 {
		t.Errorf("empty run rates = %v %v %v, want all 0",
			st.ActiveAvg(), st.EnabledAvg(), st.ReportRate())
	}
}
