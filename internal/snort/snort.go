// Package snort implements the network-intrusion-detection benchmark. It
// generates a Snort-like ruleset (PCRE patterns inside rule options, some
// carrying Snort-specific PCRE modifiers such as U/I/P that scope the
// pattern to an HTTP buffer, and some carrying the isdataat option), a
// synthetic packet-capture byte stream, and the Section-V rule-filtering
// experiment: rules whose patterns are meant to be applied selectively
// match wildly out of context, so excluding modifier rules drops the
// benchmark's report rate ~5x and excluding isdataat rules a further ~2x.
package snort

import (
	"fmt"
	"strconv"
	"strings"

	"automatazoo/internal/automata"
	"automatazoo/internal/randx"
	"automatazoo/internal/regex"
)

// Rule is one Snort rule's automata-relevant content.
type Rule struct {
	SID       int
	Msg       string
	PCRE      string      // raw pattern (no slashes)
	Flags     regex.Flags // i / s
	SnortMods string      // Snort-specific PCRE modifiers (U, I, P, H, …)
	Isdataat  bool        // rule carries an isdataat option
}

// HasSnortModifiers reports whether the rule's pattern was written for a
// specific HTTP buffer rather than the raw stream.
func (r Rule) HasSnortModifiers() bool { return r.SnortMods != "" }

// Format renders the rule in Snort's rule syntax.
func (r Rule) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, `alert tcp any any -> any any (msg:%q; pcre:"/%s/`, r.Msg, r.PCRE)
	if r.Flags&regex.CaseInsensitive != 0 {
		sb.WriteByte('i')
	}
	if r.Flags&regex.DotAll != 0 {
		sb.WriteByte('s')
	}
	sb.WriteString(r.SnortMods)
	sb.WriteString(`";`)
	if r.Isdataat {
		sb.WriteString(" isdataat:10,relative;")
	}
	fmt.Fprintf(&sb, " sid:%d;)", r.SID)
	return sb.String()
}

// ParseRule parses the subset of Snort rule syntax Format emits (plus
// whitespace tolerance): the pcre, isdataat, msg, and sid options.
func ParseRule(line string) (Rule, error) {
	var r Rule
	open := strings.IndexByte(line, '(')
	close_ := strings.LastIndexByte(line, ')')
	if open < 0 || close_ < open {
		return r, fmt.Errorf("snort: no option block in %q", line)
	}
	body := line[open+1 : close_]
	for _, opt := range splitOptions(body) {
		key, val, _ := strings.Cut(strings.TrimSpace(opt), ":")
		val = strings.TrimSpace(val)
		switch strings.TrimSpace(key) {
		case "pcre":
			val = strings.Trim(val, `"`)
			pat, flags, extra, err := regex.ParsePCRE(val)
			if err != nil {
				return r, fmt.Errorf("snort: %v", err)
			}
			r.PCRE = pat
			r.Flags = flags
			r.SnortMods = extra
		case "isdataat":
			r.Isdataat = true
		case "msg":
			r.Msg = strings.Trim(val, `"`)
		case "sid":
			sid, err := strconv.Atoi(val)
			if err != nil {
				return r, fmt.Errorf("snort: bad sid %q", val)
			}
			r.SID = sid
		}
	}
	if r.PCRE == "" {
		return r, fmt.Errorf("snort: rule has no pcre option: %q", line)
	}
	return r, nil
}

// splitOptions splits a rule option block on semicolons that are not
// inside a quoted string.
func splitOptions(body string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '"':
			if i == 0 || body[i-1] != '\\' {
				depth = !depth
			}
		case ';':
			if !depth {
				out = append(out, body[start:i])
				start = i + 1
			}
		}
	}
	if start < len(body) {
		out = append(out, body[start:])
	}
	return out
}

// GenConfig sizes the generated ruleset. Defaults mirror the paper's
// population: 2,486 content rules survive filtering, 2,856 carry Snort
// modifiers, 182 carry isdataat.
type GenConfig struct {
	CleanRules    int
	ModifierRules int
	IsdataatRules int
}

// DefaultGenConfig is the paper-scale ruleset.
func DefaultGenConfig() GenConfig {
	return GenConfig{CleanRules: 2486, ModifierRules: 2856, IsdataatRules: 182}
}

// Small vocabulary of HTTP-ish tokens the traffic generator also draws
// from, so modifier rules (written for specific HTTP buffers) match
// constantly when misapplied to the raw stream.
var (
	methods    = []string{"GET", "POST", "PUT", "HEAD"}
	headers    = []string{"Host", "User-Agent", "Accept", "Cookie", "Referer", "Authorization", "Content-Type"}
	uriWords   = []string{"admin", "login", "index", "api", "static", "img", "cgi-bin", "upload", "search", "view"}
	extensions = []string{"php", "html", "asp", "jsp", "cgi", "exe"}
	agents     = []string{"Mozilla", "curl", "Wget", "scanner", "python-requests"}
)

// Generate produces the ruleset. Clean rules carry long random literals
// (plus classes and bounded repeats) that occur rarely; modifier rules are
// short HTTP-buffer patterns; isdataat rules are tiny line-structure
// patterns that fire constantly out of context.
func Generate(cfg GenConfig, seed uint64) []Rule {
	rng := randx.New(seed)
	var rules []Rule
	sid := 1000
	esc := func(s string) string {
		var sb strings.Builder
		for i := 0; i < len(s); i++ {
			c := s[i]
			if strings.IndexByte(`.*+?()[]{}|\^$/`, c) >= 0 {
				sb.WriteByte('\\')
			}
			sb.WriteByte(c)
		}
		return sb.String()
	}
	randLit := func(n int) string {
		const alpha = "abcdefghijklmnopqrstuvwxyz0123456789_"
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteByte(alpha[rng.Intn(len(alpha))])
		}
		return sb.String()
	}
	for i := 0; i < cfg.CleanRules; i++ {
		sid++
		var pat string
		switch rng.Intn(8) {
		case 0: // moderate matcher: specific agent + leading version digit
			// (real content rules legitimately fire now and then; after
			// §V filtering, these are roughly half of remaining reports)
			pat = esc(randx.Pick(rng, agents)) + fmt.Sprintf("%d[0-9]", rng.Intn(10))
		case 1: // exploit-ish two-part payload with a bounded gap
			pat = esc(randLit(20+rng.Intn(16))) + ".{0,16}" + esc(randLit(14+rng.Intn(12))) +
				"\\x2e" + esc(randx.Pick(rng, extensions))
		case 2: // URI attack shape with classes
			pat = esc("/"+randx.Pick(rng, uriWords)+"/") + esc(randLit(16+rng.Intn(12))) +
				"[0-9]{2,4}\\.(" + esc(randx.Pick(rng, extensions)) + ")" +
				"\\?" + esc(randLit(10)) + "=[a-zA-Z0-9%]{4,24}"
		case 3: // binary marker with interior structure
			pat = fmt.Sprintf("\\x%02x\\x%02x%s\\x%02x[\\x80-\\xff]{2,8}%s\\x%02x",
				0x80|rng.Intn(0x7f), rng.Intn(0x20), esc(randLit(16+rng.Intn(10))),
				0x80|rng.Intn(0x7f), esc(randLit(12)), 0x80|rng.Intn(0x7f))
		default: // command-injection-ish
			pat = esc(randLit(12+rng.Intn(8))) + "(=|%3d)" + esc(randLit(14+rng.Intn(10))) +
				"(;|\\|)" + esc(randLit(10)) + "(%0a|\\n)"
		}
		rules = append(rules, Rule{SID: sid, Msg: "SYNTH content rule", PCRE: pat,
			Flags: regexFlagsFor(rng)})
	}
	mods := []string{"U", "I", "P", "H"}
	for i := 0; i < cfg.ModifierRules; i++ {
		sid++
		var pat string
		switch rng.Intn(4) {
		case 0: // header-buffer pattern scoped to one agent value
			pat = esc(randx.Pick(rng, headers)+": ") + esc(randx.Pick(rng, agents))
		case 1: // method + URI word
			pat = "(" + esc(randx.Pick(rng, methods)) + ") \\/" + esc(randx.Pick(rng, uriWords))
		case 2: // two-component URI path
			pat = "\\/" + esc(randx.Pick(rng, uriWords)) + "\\/" + esc(randx.Pick(rng, uriWords))
		default: // header + version digit
			pat = esc(randx.Pick(rng, headers)+": ") + "[A-Za-z]+" + fmt.Sprintf("%d", rng.Intn(10))
		}
		rules = append(rules, Rule{SID: sid, Msg: "SYNTH modifier rule", PCRE: pat,
			Flags: regexFlagsFor(rng), SnortMods: randx.Pick(rng, mods)})
	}
	for i := 0; i < cfg.IsdataatRules; i++ {
		sid++
		var pat string
		switch rng.Intn(3) {
		case 0: // line structure scoped to one header and agent value
			pat = "\\r\\n" + esc(randx.Pick(rng, headers)) + "\\x3a " + esc(randx.Pick(rng, agents))
		case 1: // status-line boundary followed by a specific header
			pat = "HTTP\\/1\\.1\\r\\n" + esc(randx.Pick(rng, headers))
		default: // request line with a specific URI word
			pat = esc(randx.Pick(rng, methods)) + " \\/" + esc(randx.Pick(rng, uriWords))
		}
		rules = append(rules, Rule{SID: sid, Msg: "SYNTH isdataat rule", PCRE: pat,
			Isdataat: true})
	}
	return rules
}

func regexFlagsFor(rng *randx.Rand) regex.Flags {
	var f regex.Flags
	if rng.Intn(3) == 0 {
		f |= regex.CaseInsensitive
	}
	return f
}

// FilterMode selects the Section-V rule populations.
type FilterMode int

const (
	// All compiles every rule (ANMLZoo's mistake).
	All FilterMode = iota
	// NoModifiers excludes rules with Snort-specific PCRE modifiers.
	NoModifiers
	// Filtered additionally excludes isdataat rules — the AutomataZoo
	// benchmark population.
	Filtered
)

func (m FilterMode) String() string {
	switch m {
	case All:
		return "all rules"
	case NoModifiers:
		return "no modifier rules"
	default:
		return "no modifier / no isdataat rules"
	}
}

// Select returns the rules included under mode.
func Select(rules []Rule, mode FilterMode) []Rule {
	var out []Rule
	for _, r := range rules {
		if mode >= NoModifiers && r.HasSnortModifiers() {
			continue
		}
		if mode >= Filtered && r.Isdataat {
			continue
		}
		out = append(out, r)
	}
	return out
}

// Compile builds one automaton from the selected rules; each rule reports
// with its SID. Rules the PCRE-subset compiler rejects are skipped and
// counted (mirroring "every regular expression … that can be successfully
// compiled by the pcre2mnrl tool").
func Compile(rules []Rule) (*automata.Automaton, int, error) {
	return CompileTagged(rules, nil)
}

// CompileTagged is Compile additionally reporting each successfully
// compiled rule's builder state range to tag (when non-nil), so a cost-
// attribution provenance map (internal/attr) can name states by rule.
func CompileTagged(rules []Rule, tag func(name string, lo, hi int)) (*automata.Automaton, int, error) {
	b := automata.NewBuilder()
	skipped := 0
	for _, r := range rules {
		lo := b.NumStates()
		parsed, err := regex.Parse(r.PCRE, r.Flags)
		if err != nil {
			skipped++
			continue
		}
		if _, err := regex.CompileInto(b, parsed, int32(r.SID)); err != nil {
			skipped++
			continue
		}
		if tag != nil {
			tag(fmt.Sprintf("sid:%d", r.SID), lo, b.NumStates())
		}
	}
	a, err := b.Build()
	return a, skipped, err
}
