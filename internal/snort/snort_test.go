package snort

import (
	"strings"
	"testing"

	"automatazoo/internal/regex"
	"automatazoo/internal/sim"
)

func TestFormatParseRoundTrip(t *testing.T) {
	rules := Generate(GenConfig{CleanRules: 20, ModifierRules: 20, IsdataatRules: 5}, 1)
	for _, r := range rules {
		line := r.Format()
		got, err := ParseRule(line)
		if err != nil {
			t.Fatalf("ParseRule(%q): %v", line, err)
		}
		if got.PCRE != r.PCRE || got.SID != r.SID || got.Isdataat != r.Isdataat ||
			got.SnortMods != r.SnortMods || got.Flags != r.Flags {
			t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", r, got)
		}
	}
}

func TestParseRuleErrors(t *testing.T) {
	for _, bad := range []string{
		"alert tcp no options",
		`alert tcp any any -> any any (msg:"x"; sid:1;)`, // no pcre
		`alert tcp any any -> any any (pcre:"/a/"; sid:zzz;)`,
	} {
		if _, err := ParseRule(bad); err == nil {
			t.Errorf("ParseRule(%q) should fail", bad)
		}
	}
}

func TestGeneratePopulations(t *testing.T) {
	cfg := GenConfig{CleanRules: 30, ModifierRules: 20, IsdataatRules: 10}
	rules := Generate(cfg, 7)
	if len(rules) != 60 {
		t.Fatalf("rules=%d", len(rules))
	}
	var clean, mod, isd int
	seen := map[int]bool{}
	for _, r := range rules {
		if seen[r.SID] {
			t.Fatalf("duplicate SID %d", r.SID)
		}
		seen[r.SID] = true
		switch {
		case r.Isdataat:
			isd++
		case r.HasSnortModifiers():
			mod++
		default:
			clean++
		}
	}
	if clean != 30 || mod != 20 || isd != 10 {
		t.Fatalf("populations clean=%d mod=%d isd=%d", clean, mod, isd)
	}
}

func TestGeneratedRulesCompile(t *testing.T) {
	rules := Generate(GenConfig{CleanRules: 60, ModifierRules: 40, IsdataatRules: 10}, 3)
	for _, r := range rules {
		if _, err := regex.Parse(r.PCRE, r.Flags); err != nil {
			t.Errorf("rule %d pattern %q does not compile: %v", r.SID, r.PCRE, err)
		}
	}
}

func TestSelectModes(t *testing.T) {
	rules := Generate(GenConfig{CleanRules: 10, ModifierRules: 10, IsdataatRules: 10}, 5)
	if n := len(Select(rules, All)); n != 30 {
		t.Fatalf("All=%d", n)
	}
	if n := len(Select(rules, NoModifiers)); n != 20 {
		t.Fatalf("NoModifiers=%d", n)
	}
	if n := len(Select(rules, Filtered)); n != 10 {
		t.Fatalf("Filtered=%d", n)
	}
}

func TestCompileSkipsUncompilable(t *testing.T) {
	rules := []Rule{
		{SID: 1, PCRE: "goodrule"},
		{SID: 2, PCRE: "(unclosed"},
	}
	a, skipped, err := Compile(rules)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 1 {
		t.Fatalf("skipped=%d", skipped)
	}
	if a.NumStates() != 8 {
		t.Fatalf("states=%d", a.NumStates())
	}
}

func TestTrafficShape(t *testing.T) {
	rules := Generate(GenConfig{CleanRules: 20, ModifierRules: 10, IsdataatRules: 5}, 9)
	tr := Traffic(5000, rules, 4)
	if len(tr) != 5000 {
		t.Fatalf("len=%d", len(tr))
	}
	s := string(tr)
	if !strings.Contains(s, "HTTP/1.1") || !strings.Contains(s, "\r\n") {
		t.Fatal("traffic lacks HTTP structure")
	}
}

func TestUnescape(t *testing.T) {
	if got := unescape(`abc\.def\x41`); got != "abc.defA" {
		t.Fatalf("unescape=%q", got)
	}
	if !isPlantableLiteral(`abc\.def\x41`) {
		t.Fatal("literal should be plantable")
	}
	if isPlantableLiteral(`ab[cd]`) || isPlantableLiteral(`a+`) {
		t.Fatal("non-literals accepted")
	}
}

func TestExperimentRatesDrop(t *testing.T) {
	// Scaled-down Section V: removing modifier rules must cut the report
	// rate sharply; removing isdataat rules must cut it again.
	rules := Generate(GenConfig{CleanRules: 120, ModifierRules: 140, IsdataatRules: 9}, 11)
	traffic := Traffic(60_000, rules, 2)
	res, err := Experiment(rules, traffic)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("results=%d", len(res))
	}
	full, nomod, filtered := res[0], res[1], res[2]
	if full.ReportRate <= nomod.ReportRate*2 {
		t.Fatalf("modifier removal should drop rate sharply: %.4f -> %.4f",
			full.ReportRate, nomod.ReportRate)
	}
	if nomod.ReportRate <= filtered.ReportRate*1.3 {
		t.Fatalf("isdataat removal should drop rate further: %.4f -> %.4f",
			nomod.ReportRate, filtered.ReportRate)
	}
	if filtered.Reports == 0 {
		t.Fatal("clean rules should still fire occasionally (planted payloads)")
	}
}

func TestCleanRulesFireRarely(t *testing.T) {
	rules := Generate(GenConfig{CleanRules: 100, ModifierRules: 0, IsdataatRules: 0}, 13)
	traffic := Traffic(40_000, rules, 6)
	a, _, err := Compile(rules)
	if err != nil {
		t.Fatal(err)
	}
	e := sim.New(a)
	st := e.Run(traffic)
	if st.ReportRate() > 0.01 {
		t.Fatalf("clean rules too noisy: rate=%.4f", st.ReportRate())
	}
}
