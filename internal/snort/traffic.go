package snort

import (
	"fmt"
	"strings"

	"automatazoo/internal/randx"
	"automatazoo/internal/sim"
)

// Traffic synthesizes a packet-capture payload stream of roughly n bytes:
// HTTP requests and responses built from the shared vocabulary (so
// buffer-scoped rules match out of context), binary payload segments, and
// occasional planted content-rule payloads so the clean population also
// fires at a low rate.
func Traffic(n int, rules []Rule, seed uint64) []byte {
	rng := randx.New(seed ^ 0x7f2a)
	var sb strings.Builder
	sb.Grow(n + 512)
	var cleanPats []string
	for _, r := range rules {
		if !r.HasSnortModifiers() && !r.Isdataat && isPlantableLiteral(r.PCRE) {
			cleanPats = append(cleanPats, unescape(r.PCRE))
		}
	}
	reqNo := 0
	for sb.Len() < n {
		reqNo++
		switch rng.Intn(5) {
		case 0: // binary segment
			for i := 0; i < 80+rng.Intn(200); i++ {
				sb.WriteByte(rng.Byte())
			}
		default: // HTTP exchange
			m := randx.Pick(rng, methods)
			uri := "/" + randx.Pick(rng, uriWords) + "/" + randx.Pick(rng, uriWords) + "." + randx.Pick(rng, extensions)
			fmt.Fprintf(&sb, "%s %s HTTP/1.1\r\n", m, uri)
			for h := 0; h < 3+rng.Intn(4); h++ {
				fmt.Fprintf(&sb, "%s: %s%d\r\n", randx.Pick(rng, headers), randx.Pick(rng, agents), rng.Intn(100))
			}
			sb.WriteString("\r\n")
			// Body with occasional planted clean-rule payload.
			if len(cleanPats) > 0 && rng.Intn(40) == 0 {
				sb.WriteString(randx.Pick(rng, cleanPats))
			}
			for i := 0; i < 40+rng.Intn(120); i++ {
				sb.WriteByte(byte('a' + rng.Intn(26)))
			}
			sb.WriteString("\r\n")
		}
	}
	return []byte(sb.String()[:n])
}

// isPlantableLiteral accepts patterns that are escaped literals (the clean
// generator's case-0 form), so Traffic can embed a matching payload.
func isPlantableLiteral(pat string) bool {
	for i := 0; i < len(pat); i++ {
		switch pat[i] {
		case '\\':
			if i+1 < len(pat) && pat[i+1] == 'x' {
				i += 3
			} else {
				i++
			}
		case '[', '(', '{', '+', '*', '?', '|', '.':
			return false
		}
	}
	return true
}

// unescape converts an escaped-literal pattern back to raw bytes.
func unescape(pat string) string {
	var sb strings.Builder
	for i := 0; i < len(pat); i++ {
		if pat[i] != '\\' {
			sb.WriteByte(pat[i])
			continue
		}
		i++
		if i >= len(pat) {
			break
		}
		if pat[i] == 'x' && i+2 < len(pat) {
			var v int
			fmt.Sscanf(pat[i+1:i+3], "%02x", &v)
			sb.WriteByte(byte(v))
			i += 2
		} else {
			sb.WriteByte(pat[i])
		}
	}
	return sb.String()
}

// RateResult is one row of the Section-V experiment.
type RateResult struct {
	Mode       FilterMode
	Rules      int
	Skipped    int
	Reports    int64
	ReportRate float64 // reports per input byte
}

// Experiment reproduces Section V: it compiles the ruleset under each
// filter mode, runs the same traffic through each automaton, and returns
// the report rates. The paper observes ~5x rate reduction from dropping
// modifier rules and a further ~2x from dropping isdataat rules.
func Experiment(rules []Rule, traffic []byte) ([]RateResult, error) {
	var out []RateResult
	for _, mode := range []FilterMode{All, NoModifiers, Filtered} {
		selected := Select(rules, mode)
		a, skipped, err := Compile(selected)
		if err != nil {
			return nil, err
		}
		e := sim.New(a)
		st := e.Run(traffic)
		out = append(out, RateResult{
			Mode:       mode,
			Rules:      len(selected),
			Skipped:    skipped,
			Reports:    st.Reports,
			ReportRate: st.ReportRate(),
		})
	}
	return out, nil
}
