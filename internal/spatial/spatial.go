// Package spatial models spatial automata-processing architectures (FPGA
// overlays like REAPR, or the Micron AP) analytically, the way the paper
// itself derives its FPGA numbers: "multiplying the resulting maximum
// virtual clock frequency by the number of input symbols required to drive
// the automaton". A spatial fabric consumes one symbol per clock regardless
// of active set, but is capacity- and routing-constrained.
package spatial

import "fmt"

// Model is an analytical spatial architecture.
type Model struct {
	Name string
	// ClockHz is the (virtual) clock frequency: one input symbol per cycle.
	ClockHz float64
	// StateCapacity is how many automaton states fit on one device.
	StateCapacity int
	// ReportDrainCycles models the output-reporting bottleneck: extra
	// cycles charged per report event (0 for report-light designs).
	ReportDrainCycles float64
}

// REAPR approximates the paper's placed-and-routed Kintex Ultrascale
// XCKU060 REAPR overlay.
func REAPR() Model {
	return Model{Name: "REAPR (XCKU060)", ClockHz: 250e6, StateCapacity: 663_360}
}

// MicronD480 approximates one AP chip: 49,152 STEs per D480.
func MicronD480() Model {
	return Model{Name: "Micron D480", ClockHz: 133e6, StateCapacity: 49_152}
}

// Fits reports whether an automaton of the given state count fits in one
// device.
func (m Model) Fits(states int) bool { return states <= m.StateCapacity }

// DevicesNeeded returns how many devices a benchmark of the given size
// must be partitioned across (the paper: "researchers must develop ways to
// evaluate sequential runs of the partitioned benchmark").
func (m Model) DevicesNeeded(states int) int {
	if states <= 0 {
		return 0
	}
	return (states + m.StateCapacity - 1) / m.StateCapacity
}

// SymbolsPerSec returns the streaming symbol throughput given a report
// rate (reports per symbol).
func (m Model) SymbolsPerSec(reportRate float64) float64 {
	return m.ClockHz / (1 + reportRate*m.ReportDrainCycles)
}

// ClassificationsPerSec returns item-classification throughput when each
// item needs symbolsPerItem input symbols (the Table IV REAPR model).
func (m Model) ClassificationsPerSec(symbolsPerItem int) float64 {
	if symbolsPerItem <= 0 {
		return 0
	}
	return m.ClockHz / float64(symbolsPerItem)
}

// Utilization returns the fraction of one device's state capacity a
// benchmark uses (>1 means it does not fit).
func (m Model) Utilization(states int) float64 {
	return float64(states) / float64(m.StateCapacity)
}

func (m Model) String() string {
	return fmt.Sprintf("%s @ %.0f MHz, %d states", m.Name, m.ClockHz/1e6, m.StateCapacity)
}
