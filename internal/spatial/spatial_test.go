package spatial

import (
	"strings"
	"testing"
)

func TestFitsAndDevices(t *testing.T) {
	m := MicronD480()
	if !m.Fits(49_152) || m.Fits(49_153) {
		t.Fatal("capacity boundary wrong")
	}
	if m.DevicesNeeded(0) != 0 {
		t.Fatal("zero states need zero devices")
	}
	if m.DevicesNeeded(1) != 1 || m.DevicesNeeded(49_152) != 1 || m.DevicesNeeded(49_153) != 2 {
		t.Fatal("device partitioning wrong")
	}
}

func TestClassificationsPerSec(t *testing.T) {
	m := REAPR()
	if got := m.ClassificationsPerSec(25); got != 250e6/25 {
		t.Fatalf("cps=%v", got)
	}
	if m.ClassificationsPerSec(0) != 0 {
		t.Fatal("zero symbols should yield zero")
	}
	// More symbols per item ⇒ lower throughput (Table II's runtime trend).
	if m.ClassificationsPerSec(34) >= m.ClassificationsPerSec(25) {
		t.Fatal("throughput must fall with symbol count")
	}
}

func TestSymbolsPerSecWithReportDrain(t *testing.T) {
	m := Model{ClockHz: 100e6, ReportDrainCycles: 10}
	full := m.SymbolsPerSec(0)
	loaded := m.SymbolsPerSec(0.5)
	if full != 100e6 {
		t.Fatalf("full=%v", full)
	}
	if loaded >= full {
		t.Fatal("report drain should cost throughput")
	}
}

func TestUtilization(t *testing.T) {
	m := MicronD480()
	if u := m.Utilization(49_152 / 2); u != 0.5 {
		t.Fatalf("util=%v", u)
	}
}

func TestString(t *testing.T) {
	if s := REAPR().String(); !strings.Contains(s, "REAPR") || !strings.Contains(s, "MHz") {
		t.Fatalf("string: %s", s)
	}
}
