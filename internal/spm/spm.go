// Package spm implements the Sequence Matching benchmarks (sequential
// pattern mining support counting, Wang et al. CF'16). A sequential
// pattern <q1, q2, …, qp> is supported by a transaction — a sequence of
// itemsets, each a sorted set of items — when q1 appears in some itemset,
// q2 in a strictly later itemset, and so on. The automata count pattern
// occurrences in a streaming transaction database.
//
// Each pattern position ("slot") is a five-state structure:
//
//	W  wait: items below the slot's item, self-looping
//	M  match: the slot's item
//	T  trail: items above the slot's item, self-looping (consume the rest
//	   of the itemset)
//	S  separator: the end-of-itemset symbol
//	G  gap: anything, self-looping (later itemsets may intervene)
//
// which yields exactly 5·p states per filter — Table I's 30 states for
// 6-position filters and 50 for 10-slot structures.
//
// Three benchmark variants mirror the paper:
//
//   - plain: report on every pattern occurrence;
//   - wC (WithCounters): one AP counter element per filter accumulates
//     support and reports once at a threshold, cutting report traffic
//     (adds exactly one element per subgraph, as in Table I);
//   - padded (Padding > 0): the symbol-replacement design of Section VII —
//     the structure has extra soft-configurable slots whose states are
//     configured to match a reserved item that never occurs. They do no
//     computation but are repeatedly enabled, which is precisely the
//     performance-portability hazard Table III measures.
package spm

import (
	"fmt"

	"automatazoo/internal/automata"
	"automatazoo/internal/charset"
	"automatazoo/internal/randx"
)

// Alphabet layout.
const (
	// MaxItem is the largest item code; items are bytes 1..MaxItem.
	MaxItem = 64
	// Sep terminates an itemset.
	Sep byte = 0xFF
	// PadItem is the reserved item assigned to padding slots; it never
	// occurs in generated inputs.
	PadItem byte = 0xFD
)

// Pattern is a sequential pattern: one item per position (the common
// single-item-itemset form used for support counting).
type Pattern struct {
	Items []byte // each in 1..MaxItem
}

// RandomPattern draws a pattern with p positions.
func RandomPattern(rng *randx.Rand, p int) Pattern {
	items := make([]byte, p)
	for i := range items {
		items[i] = byte(1 + rng.Intn(MaxItem))
	}
	return Pattern{Items: items}
}

// Config selects the benchmark variant.
type Config struct {
	// Padding adds this many dead soft-reconfiguration slots per filter
	// (each 5 states configured to PadItem).
	Padding int
	// WithCounter routes occurrences into a latching support counter that
	// reports once at SupportThreshold.
	WithCounter      bool
	SupportThreshold uint32
}

// StatesPerFilter returns the state count of one filter under cfg.
func StatesPerFilter(p int, cfg Config) int {
	n := 5 * (p + cfg.Padding)
	if cfg.WithCounter {
		n++
	}
	return n
}

// Build appends one pattern filter to b, reporting with code.
func Build(b *automata.Builder, pat Pattern, cfg Config, code int32) error {
	if len(pat.Items) == 0 {
		return fmt.Errorf("spm: empty pattern")
	}
	if cfg.WithCounter && cfg.SupportThreshold == 0 {
		return fmt.Errorf("spm: counter variant needs a support threshold")
	}
	for _, it := range pat.Items {
		if it == 0 || it > MaxItem {
			return fmt.Errorf("spm: item %d out of range", it)
		}
	}
	anyItem := charset.Range(1, MaxItem)
	sep := charset.Single(Sep)
	gapClass := anyItem.Union(sep)

	var prevOut []automata.StateID // states enabling the next slot's entry
	var lastS automata.StateID
	for i, q := range pat.Items {
		below := charset.Range(1, q-1)
		above := charset.Range(q+1, MaxItem)

		st := automata.StartNone
		if i == 0 {
			st = automata.StartAllInput
		}
		w := b.AddSTE(below, st)
		m := b.AddSTE(charset.Single(q), st)
		tr := b.AddSTE(above, automata.StartNone)
		s := b.AddSTE(sep, automata.StartNone)
		g := b.AddSTE(gapClass, automata.StartNone)

		b.AddEdge(w, w)
		b.AddEdge(w, m)
		b.AddEdge(m, tr)
		b.AddEdge(m, s)
		b.AddEdge(tr, tr)
		b.AddEdge(tr, s)
		b.AddEdge(s, g)
		b.AddEdge(g, g)
		for _, p := range prevOut {
			b.AddEdge(p, w)
			b.AddEdge(p, m)
		}
		prevOut = []automata.StateID{s, g}
		lastS = s
	}

	// Padding slots: same five-state structure, but every state is
	// configured to the reserved item, so none ever matches. Their heads
	// hang off the structure's scanning spine — the first slot's wait
	// state (active while hunting for the first item) and its gap state
	// (persistently active once scanning is under way) — so each pad head
	// is re-enabled nearly every cycle: pure overhead that never changes
	// the computed kernel, exactly the soft-reconfiguration hazard of
	// §VII.
	padClass := charset.Single(PadItem)
	firstW := firstSlotState(b, pat, 0)
	firstG := firstSlotState(b, pat, 4)
	for pi := 0; pi < cfg.Padding; pi++ {
		var ids [5]automata.StateID
		for j := range ids {
			ids[j] = b.AddSTE(padClass, automata.StartNone)
		}
		for j := 0; j < 4; j++ {
			b.AddEdge(ids[j], ids[j+1])
		}
		// Two of each pad slot's states sit on the spine, as reconfigurable
		// slots are wired into both the item-scan and the set-boundary
		// paths of the real structure.
		b.AddEdge(firstW, ids[0])
		b.AddEdge(firstG, ids[0])
		b.AddEdge(firstG, ids[1])
	}

	if cfg.WithCounter {
		c := b.AddCounter(cfg.SupportThreshold, automata.CountLatch)
		b.AddEdge(lastS, c)
		b.SetReport(c, code)
	} else {
		b.SetReport(lastS, code)
	}
	return nil
}

// firstSlotState recovers a state of the filter's first slot by its offset
// within the 5-state slot layout (0=W, 1=M, 2=T, 3=S, 4=G), counting back
// from the current builder size.
func firstSlotState(b *automata.Builder, pat Pattern, offset int) automata.StateID {
	base := automata.StateID(b.NumStates() - 5*len(pat.Items))
	return base + automata.StateID(offset)
}

// Benchmark builds n filters with p positions each under cfg. Filter i
// reports with code i.
func Benchmark(n, p int, cfg Config, seed uint64) (*automata.Automaton, error) {
	rng := randx.New(seed)
	b := automata.NewBuilder()
	for i := 0; i < n; i++ {
		if err := Build(b, RandomPattern(rng, p), cfg, int32(i)); err != nil {
			return nil, err
		}
	}
	return b.Build()
}

// Input generates a transaction-database stream: itemsets of random sorted
// items terminated by Sep. Roughly plantEvery itemsets, a run of itemsets
// containing a given pattern's items in order is emitted so filters have
// real support to count (plantEvery <= 0 disables planting).
func Input(patterns []Pattern, itemsets, itemsPerSet, plantEvery int, seed uint64) []byte {
	rng := randx.New(seed ^ 0x59a3)
	var out []byte
	emitSet := func(extra []byte) {
		k := 1 + rng.Intn(itemsPerSet)
		seen := map[byte]bool{}
		for _, e := range extra {
			seen[e] = true
		}
		items := append([]byte(nil), extra...)
		for len(items) < k {
			it := byte(1 + rng.Intn(MaxItem))
			if !seen[it] {
				seen[it] = true
				items = append(items, it)
			}
		}
		sortBytes(items)
		out = append(out, items...)
		out = append(out, Sep)
	}
	next := 0
	for i := 0; i < itemsets; i++ {
		if plantEvery > 0 && len(patterns) > 0 && i%plantEvery == 0 {
			pat := patterns[next%len(patterns)]
			next++
			for _, q := range pat.Items {
				emitSet([]byte{q})
				i++
			}
			if i >= itemsets {
				break
			}
		}
		emitSet(nil)
	}
	return out
}

func sortBytes(xs []byte) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
