package spm

import (
	"bytes"
	"testing"

	"automatazoo/internal/automata"
	"automatazoo/internal/randx"
	"automatazoo/internal/sim"
)

// stream builds an itemset stream from explicit itemsets.
func stream(sets ...[]byte) []byte {
	var out []byte
	for _, s := range sets {
		out = append(out, s...)
		out = append(out, Sep)
	}
	return out
}

func buildOne(t *testing.T, pat Pattern, cfg Config) *automata.Automaton {
	t.Helper()
	b := automata.NewBuilder()
	if err := Build(b, pat, cfg, 7); err != nil {
		t.Fatal(err)
	}
	return b.MustBuild()
}

func countReports(a *automata.Automaton, input []byte) int64 {
	e := sim.New(a)
	return e.CountReports(input)
}

func TestSimpleSequenceMatch(t *testing.T) {
	pat := Pattern{Items: []byte{5, 9}}
	a := buildOne(t, pat, Config{})
	// 5 in itemset 1, 9 in itemset 2 → one completing itemset.
	in := stream([]byte{5}, []byte{9})
	if got := countReports(a, in); got != 1 {
		t.Fatalf("reports=%d want 1", got)
	}
}

func TestSameItemsetDoesNotMatch(t *testing.T) {
	pat := Pattern{Items: []byte{5, 9}}
	a := buildOne(t, pat, Config{})
	// 5 and 9 in the SAME itemset: the pattern needs strictly later.
	if got := countReports(a, stream([]byte{5, 9})); got != 0 {
		t.Fatalf("same-itemset matched: %d", got)
	}
}

func TestGapItemsetsAllowed(t *testing.T) {
	pat := Pattern{Items: []byte{5, 9}}
	a := buildOne(t, pat, Config{})
	in := stream([]byte{5}, []byte{1, 2}, []byte{30}, []byte{9})
	if got := countReports(a, in); got != 1 {
		t.Fatalf("gapped match: reports=%d want 1", got)
	}
}

func TestSupersetItemsetsMatch(t *testing.T) {
	pat := Pattern{Items: []byte{5, 9}}
	a := buildOne(t, pat, Config{})
	// Items inside larger sorted itemsets.
	in := stream([]byte{2, 5, 11}, []byte{1, 9, 60})
	if got := countReports(a, in); got != 1 {
		t.Fatalf("superset match: reports=%d want 1", got)
	}
}

func TestOrderMatters(t *testing.T) {
	pat := Pattern{Items: []byte{5, 9}}
	a := buildOne(t, pat, Config{})
	if got := countReports(a, stream([]byte{9}, []byte{5})); got != 0 {
		t.Fatalf("reversed order matched: %d", got)
	}
}

func TestReportPerCompletingItemset(t *testing.T) {
	pat := Pattern{Items: []byte{5, 9}}
	a := buildOne(t, pat, Config{})
	// Two itemsets with 9 after one with 5 → two completions.
	in := stream([]byte{5}, []byte{9}, []byte{9})
	if got := countReports(a, in); got != 2 {
		t.Fatalf("reports=%d want 2", got)
	}
}

func TestThreePositionPattern(t *testing.T) {
	pat := Pattern{Items: []byte{3, 3, 7}}
	a := buildOne(t, pat, Config{})
	// Needs 3, later 3, later 7.
	if got := countReports(a, stream([]byte{3}, []byte{3}, []byte{7})); got != 1 {
		t.Fatalf("reports=%d", got)
	}
	if got := countReports(a, stream([]byte{3}, []byte{7})); got != 0 {
		t.Fatalf("incomplete matched: %d", got)
	}
}

func TestStatesPerFilter(t *testing.T) {
	pat := RandomPattern(randx.New(1), 6)
	for _, c := range []struct {
		cfg  Config
		want int
	}{
		{Config{}, 30},
		{Config{Padding: 4}, 50},
		{Config{WithCounter: true, SupportThreshold: 8}, 31},
		{Config{Padding: 4, WithCounter: true, SupportThreshold: 8}, 51},
	} {
		a := buildOne(t, pat, c.cfg)
		if a.NumStates() != c.want {
			t.Errorf("cfg %+v: states=%d want %d", c.cfg, a.NumStates(), c.want)
		}
		if got := StatesPerFilter(6, c.cfg); got != c.want {
			t.Errorf("StatesPerFilter(%+v)=%d want %d", c.cfg, got, c.want)
		}
	}
}

func TestPaddingDoesNotChangeKernel(t *testing.T) {
	rng := randx.New(33)
	for trial := 0; trial < 10; trial++ {
		pat := RandomPattern(rng, 3)
		plain := buildOne(t, pat, Config{})
		padded := buildOne(t, pat, Config{Padding: 4})
		in := Input([]Pattern{pat}, 200, 4, 11, uint64(trial))
		if g, w := countReports(padded, in), countReports(plain, in); g != w {
			t.Fatalf("trial %d: padded=%d plain=%d", trial, g, w)
		}
	}
}

func TestPaddingInflatesEnabledSet(t *testing.T) {
	pat := Pattern{Items: []byte{20, 40}}
	plain := buildOne(t, pat, Config{})
	padded := buildOne(t, pat, Config{Padding: 4})
	in := Input([]Pattern{pat}, 500, 4, 7, 5)
	ep := sim.New(plain)
	sp := ep.Run(in)
	eq := sim.New(padded)
	sq := eq.Run(in)
	if sq.Enabled <= sp.Enabled {
		t.Fatalf("padding should inflate enabled set: plain=%d padded=%d",
			sp.Enabled, sq.Enabled)
	}
}

func TestCounterVariant(t *testing.T) {
	pat := Pattern{Items: []byte{5, 9}}
	a := buildOne(t, pat, Config{WithCounter: true, SupportThreshold: 3})
	// Support 2 < threshold 3 → no report.
	in := stream([]byte{5}, []byte{9}, []byte{9})
	if got := countReports(a, in); got != 0 {
		t.Fatalf("reported below threshold: %d", got)
	}
	// Support 3 → exactly one report (latched).
	in = stream([]byte{5}, []byte{9}, []byte{9}, []byte{9}, []byte{9})
	if got := countReports(a, in); got != 1 {
		t.Fatalf("counter reports=%d want 1", got)
	}
}

func TestBenchmarkShape(t *testing.T) {
	a, err := Benchmark(10, 6, Config{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	sizes, _ := a.Components()
	if len(sizes) != 10 {
		t.Fatalf("subgraphs=%d", len(sizes))
	}
	if a.NumStates() != 300 {
		t.Fatalf("states=%d", a.NumStates())
	}
	awc, err := Benchmark(10, 6, Config{WithCounter: true, SupportThreshold: 16}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if awc.NumStates() != 310 || awc.NumCounters() != 10 {
		t.Fatalf("wC states=%d counters=%d", awc.NumStates(), awc.NumCounters())
	}
}

func TestInputWellFormed(t *testing.T) {
	pats := []Pattern{RandomPattern(randx.New(2), 4)}
	in := Input(pats, 100, 5, 9, 7)
	if len(in) == 0 || in[len(in)-1] != Sep {
		t.Fatal("input should end with a separator")
	}
	// No PadItem may appear, itemsets are sorted, items in range.
	cur := []byte{}
	for _, c := range in {
		if c == Sep {
			for i := 1; i < len(cur); i++ {
				if cur[i] <= cur[i-1] {
					t.Fatalf("itemset not strictly sorted: %v", cur)
				}
			}
			cur = cur[:0]
			continue
		}
		if c == PadItem {
			t.Fatal("reserved pad item in input")
		}
		if c == 0 || c > MaxItem {
			t.Fatalf("item %d out of range", c)
		}
		cur = append(cur, c)
	}
	if !bytes.Contains(in, []byte{pats[0].Items[0]}) {
		t.Fatal("planted pattern items missing entirely")
	}
}

func TestPlantedPatternsAreFound(t *testing.T) {
	rng := randx.New(12)
	pats := []Pattern{RandomPattern(rng, 3), RandomPattern(rng, 3)}
	b := automata.NewBuilder()
	for i, p := range pats {
		if err := Build(b, p, Config{}, int32(i)); err != nil {
			t.Fatal(err)
		}
	}
	a := b.MustBuild()
	in := Input(pats, 400, 4, 13, 99)
	e := sim.New(a)
	found := map[int32]bool{}
	e.OnReport = func(r sim.Report) { found[r.Code] = true }
	e.Run(in)
	for i := range pats {
		if !found[int32(i)] {
			t.Errorf("pattern %d never matched its planted support", i)
		}
	}
}

func TestBuildValidation(t *testing.T) {
	b := automata.NewBuilder()
	if err := Build(b, Pattern{}, Config{}, 0); err == nil {
		t.Error("empty pattern accepted")
	}
	if err := Build(b, Pattern{Items: []byte{99}}, Config{}, 0); err == nil {
		t.Error("out-of-range item accepted")
	}
	if err := Build(b, Pattern{Items: []byte{5}}, Config{WithCounter: true}, 0); err == nil {
		t.Error("counter without threshold accepted")
	}
}
