package stats

import (
	"context"
	"runtime"
	"testing"

	"automatazoo/internal/mesh"
	"automatazoo/internal/partition"
	"automatazoo/internal/randx"
	"automatazoo/internal/telemetry"
)

// TestObserveSegmentsParallelMatchesSequential asserts the parallel
// partitioned simulation reproduces the single-engine Dynamic profile
// field-for-field for every worker count — the stats-level half of the
// `-j 1` ≡ `-j N` guarantee.
func TestObserveSegmentsParallelMatchesSequential(t *testing.T) {
	a, err := mesh.Benchmark(mesh.Hamming, 15, 10, 2, 19)
	if err != nil {
		t.Fatal(err)
	}
	rng := randx.New(3)
	segments := [][]byte{
		mesh.RandomDNA(rng, 12_000),
		mesh.RandomDNA(rng, 8_000),
	}
	want := ObserveSegments(a, segments, nil, nil)
	if want.Reports == 0 {
		t.Fatal("kernel produced no reports; test is vacuous")
	}
	for _, workers := range []int{1, 2, runtime.NumCPU()} {
		got, err := ObserveSegmentsParallel(context.Background(), a, segments, workers, nil, nil)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got != want {
			t.Fatalf("workers=%d: Dynamic %+v != sequential %+v", workers, got, want)
		}
	}
}

// TestObserveSegmentsParallelRegistry checks the documented registry
// semantics: for a fixed workers value the totals are deterministic
// across runs, and sim.symbols counts per-slice engine work (the plan's
// passes × stream length).
func TestObserveSegmentsParallelRegistry(t *testing.T) {
	a, err := mesh.Benchmark(mesh.Hamming, 8, 10, 2, 23)
	if err != nil {
		t.Fatal(err)
	}
	rng := randx.New(9)
	seg := mesh.RandomDNA(rng, 5_000)
	for _, workers := range []int{2, runtime.NumCPU()} {
		passes := partition.ForWorkers(a, workers).Passes()
		var totals []int64
		for run := 0; run < 2; run++ {
			reg := telemetry.NewRegistry()
			if _, err := ObserveSegmentsParallel(context.Background(), a, [][]byte{seg}, workers, reg, nil); err != nil {
				t.Fatal(err)
			}
			totals = append(totals, reg.Counter("sim.symbols").Value())
		}
		if totals[0] != totals[1] {
			t.Fatalf("workers=%d: totals must be deterministic across runs: %v", workers, totals)
		}
		if want := int64(passes * len(seg)); totals[0] != want {
			t.Fatalf("workers=%d: sim.symbols=%d, want passes×len=%d", workers, totals[0], want)
		}
	}
}
