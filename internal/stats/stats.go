// Package stats computes the per-benchmark statistics reported in the
// paper's Table I: static graph structure (states, edges, subgraphs,
// subgraph-size distribution), the prefix-merged "compressed" state count,
// and the dynamic active set measured by simulating the benchmark on its
// standard input.
//
// Simulation comes in two forms with identical results: ObserveSegments
// runs the whole automaton on one engine, and ObserveSegmentsParallel
// partitions it across a worker pool (internal/parallel via
// internal/partition) — components are independent, so the summed
// activation, frontier, and report counts are exactly those of the
// single-engine run, and the returned Dynamic is equal field-for-field.
package stats

import (
	"context"
	"fmt"
	"math"

	"automatazoo/internal/attr"
	"automatazoo/internal/automata"
	"automatazoo/internal/guard"
	"automatazoo/internal/partition"
	"automatazoo/internal/segment"
	"automatazoo/internal/sim"
	"automatazoo/internal/telemetry"
	"automatazoo/internal/transform"
)

// Static describes an automaton's graph structure (the static columns of
// Table I).
type Static struct {
	States       int
	Edges        int
	EdgesPerNode float64
	Subgraphs    int
	AvgSize      float64
	StdDevSize   float64
	Counters     int
	StartStates  int
	ReportStates int
}

// Compute returns the static statistics of a.
func Compute(a *automata.Automaton) Static {
	sizes, _ := a.Components()
	s := Static{
		States:       a.NumStates(),
		Edges:        a.NumEdges(),
		Subgraphs:    len(sizes),
		Counters:     a.NumCounters(),
		StartStates:  len(a.Starts()),
		ReportStates: len(a.Reports()),
	}
	if s.States > 0 {
		s.EdgesPerNode = float64(s.Edges) / float64(s.States)
	}
	if len(sizes) > 0 {
		var sum float64
		for _, sz := range sizes {
			sum += float64(sz)
		}
		s.AvgSize = sum / float64(len(sizes))
		var varSum float64
		for _, sz := range sizes {
			d := float64(sz) - s.AvgSize
			varSum += d * d
		}
		s.StdDevSize = math.Sqrt(varSum / float64(len(sizes)))
	}
	return s
}

// Compression reports prefix-merge results: the compressed state count and
// the fraction of states removed (Table I's "Compr. factor": 0.20x means
// 20% of states were removed).
type Compression struct {
	CompressedStates int
	Factor           float64
}

// Compress runs VASim's standard prefix-merge optimization and reports the
// compression achieved.
func Compress(a *automata.Automaton) Compression {
	m, removed := transform.PrefixMerge(a)
	c := Compression{CompressedStates: m.NumStates()}
	if a.NumStates() > 0 {
		c.Factor = float64(removed) / float64(a.NumStates())
	}
	return c
}

// Dynamic describes the simulation-derived columns of Table I.
type Dynamic struct {
	Symbols    int64
	ActiveSet  float64 // mean matching states per symbol (paper's column)
	EnabledSet float64 // mean enabled frontier per symbol
	Reports    int64
	ReportRate float64
}

// Simulate runs a on input with a fresh engine and returns the dynamic
// profile.
func Simulate(a *automata.Automaton, input []byte) Dynamic {
	return SimulateSegments(a, [][]byte{input})
}

// SimulateSegments runs each segment as an independent stream (the engine
// is reset between segments, as in per-classification workloads) and
// aggregates the dynamic profile across all of them.
func SimulateSegments(a *automata.Automaton, segments [][]byte) Dynamic {
	return ObserveSegments(a, segments, nil, nil)
}

// ObserveSegments is SimulateSegments with telemetry attached: the engine
// publishes into reg (one is created when nil — cross-segment aggregation
// always flows through the registry rather than hand-rolled sums) and
// traces to tr when non-nil. The Dynamic result is derived from the
// registry's sim.* counters; reg may be shared across calls (the deltas
// this call contributed are what's reported).
func ObserveSegments(a *automata.Automaton, segments [][]byte, reg *telemetry.Registry, tr telemetry.Tracer) Dynamic {
	d, _ := ObserveSegmentsGoverned(a, segments, reg, tr, nil)
	return d
}

// ObserveSegmentsGoverned is ObserveSegments under a run governor: each
// segment runs via the engine's checked path, so budgets, cancellation,
// and injected faults stop the simulation mid-stream. On a trip the
// Dynamic derived from the work completed so far is returned with the
// error. A nil governor is exactly ObserveSegments.
func ObserveSegmentsGoverned(a *automata.Automaton, segments [][]byte, reg *telemetry.Registry, tr telemetry.Tracer, gov *guard.Governor) (Dynamic, error) {
	return ObserveSegmentsHooked(a, segments, Hooks{Registry: reg, Tracer: tr, Governor: gov})
}

// Hooks bundles every observability attachment an observed simulation can
// carry. All fields are optional; the zero value is a bare run.
type Hooks struct {
	Registry *telemetry.Registry
	Tracer   telemetry.Tracer
	Governor *guard.Governor
	// Progress, if non-nil, receives chunk-boundary heartbeats (and the
	// total expected bytes, so ETA is computable) from the engines.
	Progress *telemetry.ProgressTracker
	// Recorder, if non-nil, receives engine events for postmortem dumps.
	Recorder *telemetry.FlightRecorder
	// Attribution, if non-nil, collects per-component cost attribution
	// (internal/attr) from every engine the observed run creates; the
	// collector's folded totals are identical at any worker or segment
	// count.
	Attribution *attr.Collector
	// NewEngine, if non-nil, constructs every scan engine the observed run
	// creates (whole-automaton, per-slice, and segment engines alike); nil
	// uses the plain NFA interpreter (sim.New). Engines publish their work
	// into the same sim.* registry counters regardless of implementation,
	// so the Dynamic columns stay comparable across engines.
	NewEngine func(*automata.Automaton) (segment.Engine, error)
}

// ObserveSegmentsHooked is ObserveSegmentsGoverned with the full live-ops
// hook set: the engine additionally heartbeats progress and records
// flight-recorder events at its chunk boundaries.
func ObserveSegmentsHooked(a *automata.Automaton, segments [][]byte, h Hooks) (Dynamic, error) {
	reg := h.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	if h.Progress != nil {
		var total int64
		for _, seg := range segments {
			total += int64(len(seg))
		}
		h.Progress.AddTotal(total)
	}
	before := simCounters(reg)
	var e segment.Engine
	if h.NewEngine != nil {
		var err error
		if e, err = h.NewEngine(a); err != nil {
			return Dynamic{}, err
		}
	} else {
		e = sim.New(a)
	}
	e.SetRegistry(reg)
	e.SetTracer(h.Tracer)
	e.SetGovernor(h.Governor)
	e.SetProgress(h.Progress)
	e.SetRecorder(h.Recorder)
	var led *attr.Ledger
	if h.Attribution != nil {
		led = h.Attribution.Ledger(h.Attribution.GlobalCompOf())
		e.SetLedger(led)
	}
	var err error
	for _, seg := range segments {
		e.Reset()
		if _, err = e.RunChecked(seg); err != nil {
			break
		}
	}
	if led != nil {
		led.Commit()
	}
	after := simCounters(reg)
	return dynamicFrom(
		after[0]-before[0], after[1]-before[1],
		after[2]-before[2], after[3]-before[3]), err
}

// ObserveSegmentsParallel computes the same Dynamic profile as
// ObserveSegments but executes each segment as a component-partitioned
// parallel run (partition.ForWorkers + Plan.Run) across up to workers
// goroutines. The returned Dynamic is identical to the sequential path's
// for any workers value: Symbols counts stream symbols (not per-slice
// engine symbols), and the Active/Enabled/Report sums across independent
// slices equal the whole-automaton run's counts. reg, when non-nil, is
// shared by every slice engine; its final contents are deterministic for
// a given workers value but describe per-slice work (sim.symbols
// accumulates the plan's passes × stream length, and the plan's slice
// count depends on workers). tr must be safe for concurrent use
// (telemetry.NDJSON is).
func ObserveSegmentsParallel(ctx context.Context, a *automata.Automaton, segments [][]byte, workers int, reg *telemetry.Registry, tr telemetry.Tracer) (Dynamic, error) {
	return ObserveSegmentsParallelGoverned(ctx, a, segments, workers, reg, tr, nil)
}

// ObserveSegmentsParallelGoverned is ObserveSegmentsParallel under a run
// governor shared by every slice engine (see partition.RunOptions). On a
// trip the Dynamic derived from completed segments is returned with the
// error. A nil governor is exactly ObserveSegmentsParallel.
func ObserveSegmentsParallelGoverned(ctx context.Context, a *automata.Automaton, segments [][]byte, workers int, reg *telemetry.Registry, tr telemetry.Tracer, gov *guard.Governor) (Dynamic, error) {
	return ObserveSegmentsParallelHooked(ctx, a, segments, workers, Hooks{Registry: reg, Tracer: tr, Governor: gov})
}

// ObserveSegmentsParallelHooked is ObserveSegmentsParallelGoverned with
// the full live-ops hook set. Progress heartbeats count per-slice engine
// bytes, so the tracker's total is pre-credited with passes × stream
// length — ETA stays meaningful even though slices re-scan the stream.
func ObserveSegmentsParallelHooked(ctx context.Context, a *automata.Automaton, segments [][]byte, workers int, h Hooks) (Dynamic, error) {
	plan := partition.ForWorkers(a, workers)
	if h.Progress != nil {
		var total int64
		for _, seg := range segments {
			total += int64(len(seg))
		}
		h.Progress.AddTotal(int64(plan.Passes()) * total)
	}
	var streamSymbols, active, enabled, reports int64
	for _, seg := range segments {
		res, err := plan.Run(ctx, seg, partition.RunOptions{
			Workers: workers, Registry: h.Registry, Tracer: h.Tracer,
			Governor: h.Governor, Progress: h.Progress, Recorder: h.Recorder,
			Attribution: h.Attribution, NewEngine: h.NewEngine,
		})
		if err != nil {
			return dynamicFrom(streamSymbols, active, enabled, reports), err
		}
		streamSymbols += int64(len(seg))
		active += res.Active
		enabled += res.Enabled
		reports += res.Reports
	}
	return dynamicFrom(streamSymbols, active, enabled, reports), nil
}

// StreamOptions parameterizes ObserveStreams.
type StreamOptions struct {
	// Workers bounds the scan's goroutines (<= 0 means one per CPU) and
	// feeds the automatic segment resolution.
	Workers int
	// Segments controls segment-parallel scanning of each stream
	// (internal/segment): 0 resolves automatically per stream from its
	// size and Workers (suite-sized inputs stay sequential, multi-MB
	// streams fan out), 1 disables it, N > 1 forces exactly N segments.
	Segments int
	Hooks
}

// ObserveStreams runs each stream as an independent scan — the engine
// state restarts per stream, like ObserveSegmentsHooked — optionally
// splitting each stream into segment-parallel pieces. It returns the
// Dynamic profile, the summed stitch accounting (zero when every stream
// resolved to one segment), and the first error.
//
// The Dynamic is derived from each stream's exact stitched Result, never
// from registry deltas, so it is identical for every Workers and Segments
// value — warmup and replay waste stay out of the Table-I columns and are
// visible only in the stitch accounting and the registry's sim.*/segment.*
// counters. When every stream resolves to a single segment the call
// delegates to ObserveSegmentsHooked, keeping the exact historical
// execution path (and its registry-delta derivation, which is equal there).
// On a governor trip, completed streams' exact profiles are returned with
// the error; the tripped stream's partial work is dropped, matching
// ObserveSegmentsParallelHooked.
func ObserveStreams(ctx context.Context, a *automata.Automaton, streams [][]byte, opts StreamOptions) (Dynamic, segment.Stitch, error) {
	segmented := false
	ks := make([]int, len(streams))
	for i, s := range streams {
		ks[i] = segment.Resolve(int64(len(s)), opts.Segments, opts.Workers, 0)
		if ks[i] > 1 {
			segmented = true
		}
	}
	if !segmented {
		d, err := ObserveSegmentsHooked(a, streams, opts.Hooks)
		return d, segment.Stitch{}, err
	}
	if opts.Progress != nil {
		var total int64
		for _, s := range streams {
			total += int64(len(s))
		}
		// Replayed segments re-scan their bytes, so progress can overshoot
		// this total slightly; ETA stays meaningful (waste is bounded by
		// the stitch accounting).
		opts.Progress.AddTotal(total)
	}
	var stitch segment.Stitch
	var symbols, active, enabled, reports int64
	for i, s := range streams {
		res, err := segment.Run(ctx, a, s, segment.Options{
			Segments: ks[i], Workers: opts.Workers,
			Registry: opts.Registry, Tracer: opts.Tracer, Governor: opts.Governor,
			Progress: opts.Progress, Recorder: opts.Recorder,
			Attribution: opts.Attribution, NewEngine: opts.NewEngine,
		})
		stitch.Add(res.Stitch)
		if err != nil {
			return dynamicFrom(symbols, active, enabled, reports), stitch, err
		}
		symbols += int64(len(s))
		active += res.Stats.Active
		enabled += res.Stats.Enabled
		reports += res.Stats.Reports
	}
	return dynamicFrom(symbols, active, enabled, reports), stitch, nil
}

// simCounters reads the four sim.* counters behind the dynamic columns in
// a fixed order: symbols, active, enabled, reports.
func simCounters(reg *telemetry.Registry) [4]int64 {
	return [4]int64{
		reg.Counter("sim.symbols").Value(),
		reg.Counter("sim.active").Value(),
		reg.Counter("sim.enabled").Value(),
		reg.Counter("sim.reports").Value(),
	}
}

func dynamicFrom(symbols, active, enabled, reports int64) Dynamic {
	d := Dynamic{Symbols: symbols, Reports: reports}
	if symbols > 0 {
		d.ActiveSet = float64(active) / float64(symbols)
		d.EnabledSet = float64(enabled) / float64(symbols)
		d.ReportRate = float64(reports) / float64(symbols)
	}
	return d
}

// DynamicFromRegistry derives the Table-I dynamic columns from a
// registry's cumulative sim.* counters. All rates zero-guard an empty
// input.
func DynamicFromRegistry(reg *telemetry.Registry) Dynamic {
	c := simCounters(reg)
	return dynamicFrom(c[0], c[1], c[2], c[3])
}

// Row is one full Table-I row. TopOffender, when set, names the source
// pattern attributed the most runtime cost (experiments.Observer
// attribution); Format never renders it, so the printed table is
// unchanged.
type Row struct {
	Name   string
	Domain string
	Input  string
	Static
	Compression
	Dynamic
	TopOffender string
}

// Format renders the row in the layout of Table I.
func (r Row) Format() string {
	return fmt.Sprintf("%-22s %-28s %9d %9d %6.2f %8d %8.2f %8.2f %9d %6.2fx %10.3f",
		r.Name, r.Domain, r.States, r.Edges, r.EdgesPerNode,
		r.Subgraphs, r.AvgSize, r.StdDevSize,
		r.CompressedStates, r.Factor, r.ActiveSet)
}

// Header returns the Table-I column header matching Format.
func Header() string {
	return fmt.Sprintf("%-22s %-28s %9s %9s %6s %8s %8s %8s %9s %7s %10s",
		"Benchmark", "Domain", "States", "Edges", "E/N",
		"Subgr", "AvgSz", "StdDev", "ComprSt", "Factor", "ActiveSet")
}
