package stats

import (
	"math"
	"strings"
	"testing"

	"automatazoo/internal/automata"
	"automatazoo/internal/charset"
)

func buildTwoChains(t *testing.T) *automata.Automaton {
	t.Helper()
	b := automata.NewBuilder()
	// Chain 1: 3 states.
	s0 := b.AddSTE(charset.Single('a'), automata.StartAllInput)
	s1 := b.AddSTE(charset.Single('b'), automata.StartNone)
	s2 := b.AddSTE(charset.Single('c'), automata.StartNone)
	b.AddEdge(s0, s1)
	b.AddEdge(s1, s2)
	b.SetReport(s2, 1)
	// Chain 2: 1 state.
	s3 := b.AddSTE(charset.Single('z'), automata.StartAllInput)
	b.SetReport(s3, 2)
	return b.MustBuild()
}

func TestComputeStatic(t *testing.T) {
	a := buildTwoChains(t)
	s := Compute(a)
	if s.States != 4 || s.Edges != 2 {
		t.Fatalf("states=%d edges=%d", s.States, s.Edges)
	}
	if s.Subgraphs != 2 {
		t.Fatalf("subgraphs=%d", s.Subgraphs)
	}
	if s.AvgSize != 2.0 {
		t.Fatalf("avg=%v", s.AvgSize)
	}
	if math.Abs(s.StdDevSize-1.0) > 1e-9 {
		t.Fatalf("std=%v", s.StdDevSize)
	}
	if s.EdgesPerNode != 0.5 {
		t.Fatalf("e/n=%v", s.EdgesPerNode)
	}
	if s.StartStates != 2 || s.ReportStates != 2 || s.Counters != 0 {
		t.Fatalf("aux stats: %+v", s)
	}
}

func TestCompress(t *testing.T) {
	// Two identical non-reporting prefixes merge.
	b := automata.NewBuilder()
	for i := 0; i < 2; i++ {
		s0 := b.AddSTE(charset.Single('a'), automata.StartAllInput)
		s1 := b.AddSTE(charset.Single('b'), automata.StartNone)
		b.AddEdge(s0, s1)
		b.SetReport(s1, int32(i))
	}
	a := b.MustBuild()
	c := Compress(a)
	if c.CompressedStates != 3 {
		t.Fatalf("compressed=%d want 3", c.CompressedStates)
	}
	if math.Abs(c.Factor-0.25) > 1e-9 {
		t.Fatalf("factor=%v want 0.25", c.Factor)
	}
}

func TestSimulateDynamic(t *testing.T) {
	a := buildTwoChains(t)
	d := Simulate(a, []byte("abcz"))
	if d.Symbols != 4 {
		t.Fatalf("symbols=%d", d.Symbols)
	}
	if d.Reports != 2 {
		t.Fatalf("reports=%d", d.Reports)
	}
	if d.ActiveSet <= 0 || d.EnabledSet < 0 {
		t.Fatalf("dynamic: %+v", d)
	}
	if d.ReportRate != 0.5 {
		t.Fatalf("rate=%v", d.ReportRate)
	}
}

func TestRowFormat(t *testing.T) {
	a := buildTwoChains(t)
	r := Row{
		Name:        "TestBench",
		Domain:      "Unit Testing",
		Input:       "inline",
		Static:      Compute(a),
		Compression: Compress(a),
		Dynamic:     Simulate(a, []byte("abcz")),
	}
	line := r.Format()
	if !strings.Contains(line, "TestBench") || !strings.Contains(line, "Unit Testing") {
		t.Fatalf("format: %q", line)
	}
	h := Header()
	if !strings.Contains(h, "States") || !strings.Contains(h, "ActiveSet") {
		t.Fatalf("header: %q", h)
	}
}

func TestEmptyAutomaton(t *testing.T) {
	b := automata.NewBuilder()
	a := b.MustBuild()
	s := Compute(a)
	if s.States != 0 || s.EdgesPerNode != 0 || s.AvgSize != 0 {
		t.Fatalf("empty stats: %+v", s)
	}
}
