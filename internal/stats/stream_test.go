package stats

import (
	"context"
	"testing"

	"automatazoo/internal/mesh"
	"automatazoo/internal/randx"
	"automatazoo/internal/segment"
	"automatazoo/internal/telemetry"
)

// TestObserveStreamsMatchesSequential asserts the segment-parallel stream
// scan reproduces the single-engine Dynamic profile field-for-field at
// every (workers, segments) combination — the stats-level half of the
// `-segments 1` ≡ `-segments N` guarantee.
func TestObserveStreamsMatchesSequential(t *testing.T) {
	a, err := mesh.Benchmark(mesh.Hamming, 15, 10, 2, 19)
	if err != nil {
		t.Fatal(err)
	}
	rng := randx.New(3)
	streams := [][]byte{
		mesh.RandomDNA(rng, 12_000),
		mesh.RandomDNA(rng, 8_000),
	}
	want := ObserveSegments(a, streams, nil, nil)
	if want.Reports == 0 {
		t.Fatal("kernel produced no reports; test is vacuous")
	}
	for _, segments := range []int{1, 2, 4} {
		for _, workers := range []int{1, 4} {
			got, stitch, err := ObserveStreams(context.Background(), a, streams, StreamOptions{
				Workers: workers, Segments: segments,
			})
			if err != nil {
				t.Fatalf("segments=%d workers=%d: %v", segments, workers, err)
			}
			if got != want {
				t.Fatalf("segments=%d workers=%d: Dynamic %+v != sequential %+v",
					segments, workers, got, want)
			}
			if wantSegs := int64(segments * len(streams)); segments > 1 && stitch.Segments != wantSegs {
				t.Fatalf("segments=%d: stitch saw %d segments, want %d", segments, stitch.Segments, wantSegs)
			}
			if segments == 1 && stitch != (segment.Stitch{}) {
				t.Fatalf("segments=1 must keep the unsegmented path, got stitch %+v", stitch)
			}
		}
	}
}

// TestObserveStreamsAutoResolution: the zero Segments value resolves from
// stream size — suite-sized streams stay on the exact sequential path.
func TestObserveStreamsAutoResolution(t *testing.T) {
	a, err := mesh.Benchmark(mesh.Hamming, 8, 10, 2, 23)
	if err != nil {
		t.Fatal(err)
	}
	rng := randx.New(9)
	streams := [][]byte{mesh.RandomDNA(rng, 5_000)}
	want := ObserveSegments(a, streams, nil, nil)
	got, stitch, err := ObserveStreams(context.Background(), a, streams, StreamOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if stitch != (segment.Stitch{}) {
		t.Fatalf("a 5 KB stream must not auto-segment, got stitch %+v", stitch)
	}
	if got != want {
		t.Fatalf("Dynamic %+v != sequential %+v", got, want)
	}
}

// TestObserveStreamsRegistryWaste pins the observability split: Dynamic
// stays exact while the registry's sim.symbols includes the speculative
// warmup waste on top of the stream bytes.
func TestObserveStreamsRegistryWaste(t *testing.T) {
	a, err := mesh.Benchmark(mesh.Hamming, 8, 10, 2, 23)
	if err != nil {
		t.Fatal(err)
	}
	rng := randx.New(11)
	streams := [][]byte{mesh.RandomDNA(rng, 20_000)}
	reg := telemetry.NewRegistry()
	got, stitch, err := ObserveStreams(context.Background(), a, streams, StreamOptions{
		Workers: 4, Segments: 4, Hooks: Hooks{Registry: reg},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Symbols != 20_000 {
		t.Fatalf("Dynamic.Symbols = %d, want exactly the stream length", got.Symbols)
	}
	engineWork := reg.Counter("sim.symbols").Value()
	if wantMin := int64(20_000) + stitch.WarmupBytes; engineWork < wantMin {
		t.Fatalf("sim.symbols = %d, want >= stream+warmup = %d", engineWork, wantMin)
	}
	if reg.Counter("segment.segments").Value() != 4 {
		t.Fatalf("segment.segments = %d, want 4", reg.Counter("segment.segments").Value())
	}
}
