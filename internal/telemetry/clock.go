package telemetry

import "time"

// nowNanos is this package's single real-clock read. Every time-dependent
// telemetry structure (Spans, Progress, the stall Watchdog) defaults to it
// and accepts a replacement via its SetClock, so heartbeats and span
// timings are fake-clock testable and golden artifacts can be made
// byte-deterministic. The root lint test forbids direct time.Now calls
// anywhere else in this package — route new clock reads through here or
// through an injected `now func() int64`.
func nowNanos() int64 { return time.Now().UnixNano() }
