// Package telemetry is the suite's zero-dependency observability layer:
// a metrics registry, an execution-event tracer, and per-state activity
// profiles, shared by both execution engines (internal/sim, internal/dfa)
// and surfaced by `azoo profile`, `--trace`, `--metrics`, and
// `--debug-addr`.
//
// The paper's entire evaluation is dynamic profiling — Table I's active
// set, Figure 1's report rates, Tables III–IV's CPU-engine comparisons —
// and this package is the instrumentation those measurements flow
// through. Engines nil-guard every hook, so disabled telemetry costs one
// predictable branch per site and zero allocations.
//
// # Metrics registry
//
// A Registry is a namespace of named atomic Counters, Gauges, and
// Histograms. Engines publish under conventional prefixes:
//
//	sim.symbols          counter  input symbols consumed
//	sim.enabled          counter  summed enabled-frontier sizes
//	sim.active           counter  summed per-symbol matching states
//	sim.reports          counter  reports emitted
//	sim.counter_pulses   counter  AP-counter increment events
//	sim.frontier         histogram per-symbol enabled-frontier size
//	dfa.symbols          counter  input symbols consumed
//	dfa.reports          counter  reports emitted
//	dfa.cache_hits       counter  transitions found interned
//	dfa.cache_misses     counter  transitions subset-constructed
//	dfa.cache_evictions  counter  interned dstates abandoned on overflow
//	dfa.construct_nanos  counter  cumulative subset-construction time
//	dfa.states           gauge    distinct interned DFA states
//	dfa.fallbacks        gauge    components running in NFA fallback
//
// Registry.Snapshot serializes to deterministic JSON (map keys sort), and
// PublishExpvar exposes the live snapshot at /debug/vars for long suite
// runs (see `azoo ... -debug-addr`).
//
// # Trace event schema (NDJSON)
//
// The NDJSON tracer writes one JSON object per line. Every event carries
// "ev" (the event kind) and "off" (0-based input offset). Kinds:
//
//	{"ev":"symbol","off":N,"byte":B}            input symbol consumed; B in 0..255
//	{"ev":"activate","off":N,"state":S}         state S matched the symbol at N
//	{"ev":"report","off":N,"state":S,"code":C}  report with code C emitted
//	                                            (state is 0 for DFA reports,
//	                                            which do not retain NFA IDs)
//	{"ev":"cache","off":N,"comp":K,"kind":"miss"|"evict"}
//	                                            DFA transition-cache event in
//	                                            component K
//
// Field order is fixed as shown (events are hand-formatted, not
// reflected), so traces are byte-deterministic for a deterministic run —
// golden tests rely on this. "symbol" and "activate" events honor
// NDJSON.SampleEvery (record only offsets ≡ 0 mod SampleEvery); "report"
// and "cache" events are always recorded. Cache hits are metric-counted
// but never traced: they occur once per component per byte and would
// dominate any trace.
//
// A trace replays offline: filter by "ev" to rebuild the report stream,
// bucket "activate" by "state" to rebuild the heatmap, or join "cache"
// against offsets to see where lazy determinization spends its time.
//
// # Per-state profiles and heatmaps
//
// StateProfile accumulates per-state activation and enable counts
// (sim.Engine.EnableProfile). TopK/TopSubgraphs rank the hot states with
// subgraph attribution via automata.Components, and WriteHeatmap renders
// the `azoo profile` text heatmap.
package telemetry
