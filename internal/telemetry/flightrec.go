package telemetry

import (
	"fmt"
	"io"
	"strconv"
	"sync"
)

// RecKind classifies flight-recorder events.
type RecKind uint8

const (
	// RecPhase: a phase transition (val 0 = start, 1 = end).
	RecPhase RecKind = iota
	// RecBudget: a chunk-boundary budget check (val = chunk bytes).
	RecBudget
	// RecEvict: a DFA transition-cache eviction (val = states evicted).
	RecEvict
	// RecFallback: a component degraded from DFA to NFA stepping.
	RecFallback
	// RecTrip: a guard budget tripped (name = budget, val = actual).
	RecTrip
	// RecPanic: a recovered worker panic (name = panic value).
	RecPanic
	// RecStall: the watchdog declared a stall (val = quiet nanos).
	RecStall
	// RecSegment: a segment-parallel scan event (name = site or outcome —
	// "commit"/"replay", comp = segment index, val = segment bytes).
	RecSegment
	// RecCheckpoint: a checkpoint lifecycle event (name = outcome —
	// "save"/"retry"/"disable"/"restore"/"fallback", val = stream offset
	// or attempt count).
	RecCheckpoint
)

// String returns the NDJSON wire name of the event kind.
func (k RecKind) String() string {
	switch k {
	case RecPhase:
		return "phase"
	case RecBudget:
		return "budget"
	case RecEvict:
		return "evict"
	case RecFallback:
		return "fallback"
	case RecTrip:
		return "trip"
	case RecPanic:
		return "panic"
	case RecStall:
		return "stall"
	case RecSegment:
		return "segment"
	case RecCheckpoint:
		return "checkpoint"
	}
	return "unknown"
}

// recEvent is one ring slot. name strings are interned call-site
// constants (site names, budget names, phase labels), so overwriting a
// slot never allocates; only RecordPanic builds a fresh string, and that
// path is already off the hot loop.
type recEvent struct {
	seq  uint64
	kind RecKind
	comp int32
	val  int64
	name string
}

// FlightRecorder is a fixed-size ring buffer of recent engine events —
// the "what were the engines doing" record that guard trips, worker
// panics, and the stall watchdog dump into a postmortem file. Recording
// is a mutex-guarded slot overwrite with zero allocations, cheap enough
// to leave on for whole runs; a nil recorder is a valid no-op receiver,
// so the disabled path is one predictable branch.
type FlightRecorder struct {
	mu   sync.Mutex
	seq  uint64
	ring []recEvent
}

// DefaultFlightRecorderSize is the ring capacity cmd/azoo uses: deep
// enough to hold several seconds of chunk-boundary events per worker,
// small enough (~48 B/slot) to be negligible.
const DefaultFlightRecorderSize = 512

// NewFlightRecorder returns a recorder holding the last size events
// (clamped to a sane minimum).
func NewFlightRecorder(size int) *FlightRecorder {
	if size < 16 {
		size = 16
	}
	return &FlightRecorder{ring: make([]recEvent, size)}
}

// Record appends one event, overwriting the oldest slot when full. comp
// is the engine component index (0 when not applicable); name should be a
// call-site constant so recording stays allocation-free.
func (r *FlightRecorder) Record(kind RecKind, comp int, name string, val int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	slot := &r.ring[r.seq%uint64(len(r.ring))]
	slot.seq = r.seq
	slot.kind = kind
	slot.comp = int32(comp)
	slot.val = val
	slot.name = name
	r.seq++
	r.mu.Unlock()
}

// RecordPanic records a recovered worker panic (satisfies
// parallel.CrashRecorder). The panic value is stringified and truncated;
// the full stack goes into the postmortem file separately, not the ring.
func (r *FlightRecorder) RecordPanic(index int, value any, stack []byte) {
	if r == nil {
		return
	}
	msg := fmt.Sprint(value)
	if len(msg) > 120 {
		msg = msg[:120]
	}
	r.Record(RecPanic, index, msg, int64(len(stack)))
}

// Len returns the number of events currently held (≤ ring size).
func (r *FlightRecorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seq < uint64(len(r.ring)) {
		return int(r.seq)
	}
	return len(r.ring)
}

// WriteNDJSON writes the held events oldest-first, one JSON object per
// line: {"seq":N,"ev":"kind","comp":C,"name":"...","val":V}. The output
// is deterministic for a given ring state.
func (r *FlightRecorder) WriteNDJSON(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	n := uint64(len(r.ring))
	start := uint64(0)
	count := r.seq
	if r.seq > n {
		start = r.seq - n
		count = n
	}
	events := make([]recEvent, 0, count)
	for i := uint64(0); i < count; i++ {
		events = append(events, r.ring[(start+i)%n])
	}
	r.mu.Unlock()

	buf := make([]byte, 0, 128)
	for _, e := range events {
		buf = buf[:0]
		buf = append(buf, `{"seq":`...)
		buf = strconv.AppendUint(buf, e.seq, 10)
		buf = append(buf, `,"ev":"`...)
		buf = append(buf, e.kind.String()...)
		buf = append(buf, `","comp":`...)
		buf = strconv.AppendInt(buf, int64(e.comp), 10)
		buf = append(buf, `,"name":`...)
		buf = strconv.AppendQuote(buf, e.name)
		buf = append(buf, `,"val":`...)
		buf = strconv.AppendInt(buf, e.val, 10)
		buf = append(buf, '}', '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}
