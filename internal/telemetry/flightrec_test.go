package telemetry

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestFlightRecorderRingOverwrite(t *testing.T) {
	r := NewFlightRecorder(0) // clamps to the 16-slot minimum
	for i := 0; i < 20; i++ {
		r.Record(RecBudget, i, "sim.chunk", int64(i))
	}
	if got := r.Len(); got != 16 {
		t.Fatalf("Len = %d, want 16", got)
	}
	var b bytes.Buffer
	if err := r.WriteNDJSON(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(b.String(), "\n"), "\n")
	if len(lines) != 16 {
		t.Fatalf("lines = %d, want 16", len(lines))
	}
	// Oldest four events (seq 0-3) were overwritten; output starts at 4.
	want := `{"seq":4,"ev":"budget","comp":4,"name":"sim.chunk","val":4}`
	if lines[0] != want {
		t.Errorf("first line = %s, want %s", lines[0], want)
	}
	if !strings.HasPrefix(lines[15], `{"seq":19,`) {
		t.Errorf("last line = %s, want seq 19", lines[15])
	}
}

func TestFlightRecorderPanicTruncation(t *testing.T) {
	r := NewFlightRecorder(16)
	r.RecordPanic(3, strings.Repeat("x", 200), []byte("stack"))
	var b bytes.Buffer
	if err := r.WriteNDJSON(&b); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSuffix(b.String(), "\n")
	if !strings.Contains(line, `"ev":"panic","comp":3,`) {
		t.Errorf("panic event: %s", line)
	}
	if !strings.Contains(line, `"val":5`) { // stack length
		t.Errorf("val should carry the stack length: %s", line)
	}
	if strings.Count(line, "x") != 120 {
		t.Errorf("panic value not truncated to 120 chars: %s", line)
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var r *FlightRecorder
	r.Record(RecPhase, 0, "x", 0)
	r.RecordPanic(0, "v", nil)
	if r.Len() != 0 {
		t.Fatal("nil recorder Len != 0")
	}
	if err := r.WriteNDJSON(io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRecKindStrings(t *testing.T) {
	want := map[RecKind]string{
		RecPhase: "phase", RecBudget: "budget", RecEvict: "evict",
		RecFallback: "fallback", RecTrip: "trip", RecPanic: "panic",
		RecStall: "stall", RecKind(200): "unknown",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("RecKind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
}

// TestFlightRecorderRecordZeroAllocs guards the always-on cost: recording
// with call-site-constant names must not allocate.
func TestFlightRecorderRecordZeroAllocs(t *testing.T) {
	r := NewFlightRecorder(64)
	allocs := testing.AllocsPerRun(500, func() {
		r.Record(RecBudget, 1, "sim.chunk", 4096)
	})
	if allocs != 0 {
		t.Fatalf("Record allocated %.1f times per call, want 0", allocs)
	}
}
