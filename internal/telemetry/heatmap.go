package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// StateProfile holds per-state activity counters for one engine run — the
// data behind VASim's --profile heatmaps and this suite's `azoo profile`.
// Slices are indexed by dense state ID. The profile is owned by a single
// engine and is not synchronized; merge profiles from parallel engines
// with Merge.
type StateProfile struct {
	// Activations[s] counts cycles in which state s matched the input
	// symbol (the paper's "active set", attributed per state).
	Activations []int64
	// Enables[s] counts cycles in which state s was on the enabled
	// frontier entering the cycle — the per-state share of sequential-CPU
	// work.
	Enables []int64
}

// NewStateProfile returns a zeroed profile for an automaton of n states.
func NewStateProfile(n int) *StateProfile {
	return &StateProfile{
		Activations: make([]int64, n),
		Enables:     make([]int64, n),
	}
}

// Reset zeroes all counters in place.
func (p *StateProfile) Reset() {
	for i := range p.Activations {
		p.Activations[i] = 0
	}
	for i := range p.Enables {
		p.Enables[i] = 0
	}
}

// Merge adds other's counts into p. Profiles must be the same size.
func (p *StateProfile) Merge(other *StateProfile) {
	for i, v := range other.Activations {
		p.Activations[i] += v
	}
	for i, v := range other.Enables {
		p.Enables[i] += v
	}
}

// TotalActivations returns the sum of all per-state activation counts.
func (p *StateProfile) TotalActivations() int64 {
	var t int64
	for _, v := range p.Activations {
		t += v
	}
	return t
}

// HeatEntry is one row of a heatmap: a state, its subgraph, and its
// activity counts. Share is this state's fraction of all activations.
// Pattern, when set, names the source pattern that produced the state
// (from a cost-attribution provenance map); WriteHeatmap renders the
// column only when at least one entry carries a label.
type HeatEntry struct {
	State       uint32
	Subgraph    int32
	Pattern     string
	Activations int64
	Enables     int64
	Share       float64
}

// TopK returns the k hottest states by activation count (ties broken by
// state ID for determinism), annotated with subgraph membership when comp
// is non-nil (comp[s] = subgraph index, as returned by
// automata.Components). States with zero activations are omitted.
func (p *StateProfile) TopK(k int, comp []int32) []HeatEntry {
	total := p.TotalActivations()
	entries := make([]HeatEntry, 0, 64)
	for s, n := range p.Activations {
		if n == 0 {
			continue
		}
		e := HeatEntry{State: uint32(s), Subgraph: -1, Activations: n, Enables: p.Enables[s]}
		if comp != nil {
			e.Subgraph = comp[s]
		}
		if total > 0 {
			e.Share = float64(n) / float64(total)
		}
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Activations != entries[j].Activations {
			return entries[i].Activations > entries[j].Activations
		}
		return entries[i].State < entries[j].State
	})
	if k > 0 && len(entries) > k {
		entries = entries[:k]
	}
	return entries
}

// SubgraphHeat aggregates activations per subgraph and returns the k
// hottest, as (subgraph, activations, share) entries. comp maps state →
// subgraph.
type SubgraphHeat struct {
	Subgraph    int32
	States      int
	Activations int64
	Share       float64
}

// TopSubgraphs returns the k subgraphs with the most activations.
func (p *StateProfile) TopSubgraphs(k int, comp []int32) []SubgraphHeat {
	if comp == nil {
		return nil
	}
	acts := map[int32]*SubgraphHeat{}
	var total int64
	for s, n := range p.Activations {
		if n == 0 {
			continue
		}
		c := comp[s]
		h := acts[c]
		if h == nil {
			h = &SubgraphHeat{Subgraph: c}
			acts[c] = h
		}
		h.States++
		h.Activations += n
		total += n
	}
	out := make([]SubgraphHeat, 0, len(acts))
	for _, h := range acts {
		if total > 0 {
			h.Share = float64(h.Activations) / float64(total)
		}
		out = append(out, *h)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Activations != out[j].Activations {
			return out[i].Activations > out[j].Activations
		}
		return out[i].Subgraph < out[j].Subgraph
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

const heatBarWidth = 40

func heatBar(share, maxShare float64) string {
	if maxShare <= 0 {
		return ""
	}
	n := int(share/maxShare*heatBarWidth + 0.5)
	if n < 1 {
		n = 1
	}
	return strings.Repeat("#", n)
}

// WriteHeatmap renders a per-state heatmap (TopK output) as aligned text
// with proportional bars, the human-readable form `azoo profile` prints.
func WriteHeatmap(w io.Writer, entries []HeatEntry, symbols int64) error {
	if len(entries) == 0 {
		_, err := fmt.Fprintln(w, "(no state activations)")
		return err
	}
	// The pattern column appears only when a provenance map labeled at
	// least one entry, sized to the widest label so the table stays
	// aligned; unlabeled heatmaps keep the historical layout exactly.
	patWidth := 0
	for _, e := range entries {
		if len(e.Pattern) > patWidth {
			patWidth = len(e.Pattern)
		}
	}
	if patWidth > 0 && patWidth < len("Pattern") {
		patWidth = len("Pattern")
	}
	maxShare := entries[0].Share
	if patWidth > 0 {
		if _, err := fmt.Fprintf(w, "%6s %9s %-*s %12s %12s %8s  %s\n",
			"State", "Subgraph", patWidth, "Pattern", "Activations", "Act/Symbol", "Share", "Heat"); err != nil {
			return err
		}
	} else if _, err := fmt.Fprintf(w, "%6s %9s %12s %12s %8s  %s\n",
		"State", "Subgraph", "Activations", "Act/Symbol", "Share", "Heat"); err != nil {
		return err
	}
	for _, e := range entries {
		perSym := 0.0
		if symbols > 0 {
			perSym = float64(e.Activations) / float64(symbols)
		}
		sub := "-"
		if e.Subgraph >= 0 {
			sub = fmt.Sprintf("%d", e.Subgraph)
		}
		if patWidth > 0 {
			pat := e.Pattern
			if pat == "" {
				pat = "-"
			}
			if _, err := fmt.Fprintf(w, "%6d %9s %-*s %12d %12.4f %7.2f%%  %s\n",
				e.State, sub, patWidth, pat, e.Activations, perSym, e.Share*100,
				heatBar(e.Share, maxShare)); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%6d %9s %12d %12.4f %7.2f%%  %s\n",
			e.State, sub, e.Activations, perSym, e.Share*100,
			heatBar(e.Share, maxShare)); err != nil {
			return err
		}
	}
	return nil
}

// WriteSubgraphHeatmap renders the per-subgraph aggregation.
func WriteSubgraphHeatmap(w io.Writer, entries []SubgraphHeat) error {
	if len(entries) == 0 {
		_, err := fmt.Fprintln(w, "(no subgraph activations)")
		return err
	}
	maxShare := entries[0].Share
	if _, err := fmt.Fprintf(w, "%9s %8s %12s %8s  %s\n",
		"Subgraph", "States", "Activations", "Share", "Heat"); err != nil {
		return err
	}
	for _, e := range entries {
		if _, err := fmt.Fprintf(w, "%9d %8d %12d %7.2f%%  %s\n",
			e.Subgraph, e.States, e.Activations, e.Share*100,
			heatBar(e.Share, maxShare)); err != nil {
			return err
		}
	}
	return nil
}
