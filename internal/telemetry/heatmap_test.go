package telemetry

import (
	"strings"
	"testing"
)

func TestWriteHeatmapEmptyEntries(t *testing.T) {
	var sb strings.Builder
	if err := WriteHeatmap(&sb, nil, 1000); err != nil {
		t.Fatal(err)
	}
	if got := sb.String(); got != "(no state activations)\n" {
		t.Errorf("empty heatmap = %q", got)
	}
}

func TestWriteHeatmapZeroSymbols(t *testing.T) {
	entries := []HeatEntry{{State: 3, Subgraph: 0, Activations: 7, Share: 1}}
	var sb strings.Builder
	if err := WriteHeatmap(&sb, entries, 0); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// Zero symbols must not divide: the act/symbol column reads 0, not NaN.
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Errorf("zero-symbol heatmap contains NaN/Inf:\n%s", out)
	}
	if !strings.Contains(out, "0.0000") {
		t.Errorf("zero-symbol heatmap missing zeroed act/symbol column:\n%s", out)
	}
}

func TestWriteHeatmapSingleState(t *testing.T) {
	p := NewStateProfile(1)
	p.Activations[0] = 5
	p.Enables[0] = 5
	entries := p.TopK(10, []int32{0})
	if len(entries) != 1 || entries[0].Share != 1 {
		t.Fatalf("TopK single-state = %+v, want one entry with share 1", entries)
	}
	var sb strings.Builder
	if err := WriteHeatmap(&sb, entries, 5); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), strings.Repeat("#", 40)) {
		t.Errorf("sole state should draw a full-width bar:\n%s", sb.String())
	}
}

func TestTopKAllZeroProfile(t *testing.T) {
	p := NewStateProfile(8)
	if got := p.TopK(4, nil); len(got) != 0 {
		t.Errorf("TopK of silent profile = %+v, want empty", got)
	}
	var sb strings.Builder
	if err := WriteHeatmap(&sb, p.TopK(4, nil), 100); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no state activations") {
		t.Errorf("silent profile output = %q", sb.String())
	}
}

func TestWriteSubgraphHeatmapEmpty(t *testing.T) {
	var sb strings.Builder
	if err := WriteSubgraphHeatmap(&sb, nil); err != nil {
		t.Fatal(err)
	}
	if got := sb.String(); got != "(no subgraph activations)\n" {
		t.Errorf("empty subgraph heatmap = %q", got)
	}
}

func TestTopSubgraphsNilComponents(t *testing.T) {
	p := NewStateProfile(2)
	p.Activations[0] = 1
	if got := p.TopSubgraphs(5, nil); got != nil {
		t.Errorf("TopSubgraphs(nil comp) = %+v, want nil", got)
	}
}
