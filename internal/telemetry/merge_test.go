package telemetry

import (
	"reflect"
	"sync"
	"testing"
)

func fill(r *Registry, scale int64) {
	r.Counter("c.a").Add(3 * scale)
	r.Counter("c.b").Add(5 * scale)
	r.Gauge("g.a").Set(7 * scale)
	h := r.Histogram("h.a", ExpBuckets(1, 4))
	for i := int64(0); i < 10*scale; i++ {
		h.Observe(i % 9)
	}
}

func TestMergeIsCommutative(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	fill(a, 1)
	fill(b, 3)
	b.Counter("c.only_b").Inc()
	b.Histogram("h.only_b", ExpBuckets(2, 3)).Observe(5)

	ab, ba := NewRegistry(), NewRegistry()
	ab.MergeFrom(a)
	ab.MergeFrom(b)
	ba.MergeFrom(b)
	ba.MergeFrom(a)
	if !reflect.DeepEqual(ab.Snapshot(), ba.Snapshot()) {
		t.Fatalf("merge is order-dependent:\nA,B: %+v\nB,A: %+v", ab.Snapshot(), ba.Snapshot())
	}

	s := ab.Snapshot()
	if s.Counters["c.a"] != 3+9 || s.Counters["c.b"] != 5+15 || s.Counters["c.only_b"] != 1 {
		t.Fatalf("counter sums wrong: %+v", s.Counters)
	}
	if s.Gauges["g.a"] != 21 { // max(7, 21)
		t.Fatalf("gauge merge must take max, got %d", s.Gauges["g.a"])
	}
	h := s.Histograms["h.a"]
	if h.Count != 40 {
		t.Fatalf("histogram count: %d", h.Count)
	}
}

func TestMergePreservesTotalsAcrossBoundShapes(t *testing.T) {
	src := NewRegistry()
	h := src.Histogram("h", []int64{1, 2, 4, 8})
	for _, v := range []int64{0, 1, 3, 7, 100} {
		h.Observe(v)
	}
	dst := NewRegistry()
	dst.Histogram("h", []int64{2, 16}) // coarser, different bounds
	dst.MergeFrom(src)
	got := dst.Snapshot().Histograms["h"]
	if got.Count != 5 || got.Sum != 111 || got.Max != 100 {
		t.Fatalf("totals must survive bound mismatch: %+v", got)
	}
	var bucketTotal int64
	for _, b := range got.Buckets {
		bucketTotal += b.Count
	}
	if bucketTotal != 5 {
		t.Fatalf("bucket counts lost: %d", bucketTotal)
	}
}

// TestRegistrySharedAcrossGoroutines hammers one registry from many
// goroutines (metric creation, observation, merging, snapshotting at
// once); run under -race by `make ci`, it guards the concurrent-engine
// use the parallel harnesses rely on.
func TestRegistrySharedAcrossGoroutines(t *testing.T) {
	shared := NewRegistry()
	const workers, iters = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := NewRegistry()
			for i := 0; i < iters; i++ {
				shared.Counter("n").Inc()
				shared.Gauge("g").Max(int64(i))
				shared.Histogram("h", ExpBuckets(1, 8)).Observe(int64(i))
				local.Counter("n").Inc()
			}
			shared.MergeFrom(local)
			_ = shared.Snapshot()
		}()
	}
	wg.Wait()
	if got := shared.Counter("n").Value(); got != 2*workers*iters {
		t.Fatalf("lost updates: %d, want %d", got, 2*workers*iters)
	}
	if got := shared.Histogram("h", nil).Count(); got != workers*iters {
		t.Fatalf("histogram count: %d", got)
	}
}
