package telemetry

import (
	"encoding/json"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Progress aggregates live heartbeats from running engines, one tracker
// per kernel/component. It is the data source behind the /progress debug
// endpoint, the -progress stderr ticker, and the stall watchdog.
//
// Engines publish through a *ProgressTracker obtained from Tracker. The
// hot-path method, Beat, is a handful of atomic adds plus a short
// mutex-guarded EWMA fold and never allocates; a nil tracker is a valid
// no-op receiver, so the disabled path costs one predictable branch
// (asserted by the engines' allocguard tests, like every other hook).
//
// Like Registry.Merge, Progress snapshots merge commutatively so a -j N
// fan-out aggregates canonically: bytes, cache bytes, fallbacks, and
// rates add; active set and totals take the maximum; done ORs (merges
// happen after a fan-out completes, so any contributor reporting done
// means that component's work finished somewhere).
type Progress struct {
	mu       sync.Mutex
	now      func() int64
	trackers map[string]*ProgressTracker
}

// NewProgress returns an empty aggregator using the real clock.
func NewProgress() *Progress {
	return &Progress{now: nowNanos, trackers: map[string]*ProgressTracker{}}
}

// SetClock replaces the aggregator's clock with now (nil restores the
// real clock). Trackers created afterwards inherit it; set the clock
// before instrumented work begins.
func (p *Progress) SetClock(now func() int64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if now == nil {
		now = nowNanos
	}
	p.now = now
}

// Tracker returns the named tracker, creating it on first use (idempotent
// like Registry metric constructors). Creation counts as the tracker's
// first heartbeat. A nil receiver returns a nil tracker, which is itself
// a valid no-op.
func (p *Progress) Tracker(name string) *ProgressTracker {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	t, ok := p.trackers[name]
	if !ok {
		t = &ProgressTracker{name: name, now: p.now}
		n := p.now()
		t.lastBeat.Store(n)
		t.rateLast = n
		p.trackers[name] = t
	}
	return t
}

// Snapshot copies every tracker's state, sorted by name.
func (p *Progress) Snapshot() []ProgressSnapshot {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	trackers := make([]*ProgressTracker, 0, len(p.trackers))
	for _, t := range p.trackers {
		trackers = append(trackers, t)
	}
	p.mu.Unlock()
	out := make([]ProgressSnapshot, 0, len(trackers))
	for _, t := range trackers {
		out = append(out, t.snapshot())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WriteJSON writes the snapshot as indented JSON (sorted by name, so the
// encoding is deterministic for a given state).
func (p *Progress) WriteJSON(w io.Writer) error {
	snap := p.Snapshot()
	if snap == nil {
		snap = []ProgressSnapshot{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// Merge folds another aggregator's snapshot into p, tracker-wise by name,
// with the commutative semantics documented on Progress. Used by parallel
// harnesses that give each worker a private aggregator.
func (p *Progress) Merge(snap []ProgressSnapshot) {
	if p == nil {
		return
	}
	for _, s := range snap {
		t := p.Tracker(s.Name)
		t.bytes.Add(s.Bytes)
		t.cache.Add(s.CacheBytes)
		t.fallbacks.Add(s.Fallbacks)
		for {
			cur := t.total.Load()
			if s.TotalBytes <= cur || t.total.CompareAndSwap(cur, s.TotalBytes) {
				break
			}
		}
		for {
			cur := t.active.Load()
			if s.Active <= cur || t.active.CompareAndSwap(cur, s.Active) {
				break
			}
		}
		if s.Done {
			t.done.Store(true)
		}
		t.mu.Lock()
		t.rate += s.BytesPerSec
		t.mu.Unlock()
	}
}

// Stalest returns the name and last-heartbeat timestamp (in the
// aggregator's clock) of the not-yet-done tracker that has been quiet the
// longest. ok is false when every tracker is done (or none exist) — there
// is nothing to stall on.
func (p *Progress) Stalest() (name string, lastBeat int64, ok bool) {
	if p == nil {
		return "", 0, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	first := true
	for n, t := range p.trackers {
		if t.done.Load() {
			continue
		}
		lb := t.lastBeat.Load()
		if first || lb < lastBeat || (lb == lastBeat && n < name) {
			name, lastBeat, ok = n, lb, true
			first = false
		}
	}
	return name, lastBeat, ok
}

// ewmaTau is the EWMA time constant for the bytes/sec estimate: ~1 s, so
// the published rate reflects roughly the last second of throughput.
const ewmaTau = 1e9 // nanoseconds

// ProgressTracker is one component's live heartbeat state. All methods
// are nil-receiver-safe no-ops.
type ProgressTracker struct {
	name      string
	now       func() int64
	bytes     atomic.Int64
	total     atomic.Int64
	active    atomic.Int64
	cache     atomic.Int64
	fallbacks atomic.Int64
	done      atomic.Bool
	lastBeat  atomic.Int64

	mu       sync.Mutex
	rate     float64 // bytes/sec EWMA
	rateLast int64   // clock at last EWMA fold
	pending  int64   // bytes seen since rateLast (coarse-clock beats with dt==0)
}

// Beat records one chunk-boundary heartbeat: n more input bytes scanned
// and the current active-set size. Called from engine hot loops (once per
// ~4 KiB chunk), so it must not allocate.
func (t *ProgressTracker) Beat(n, active int64) {
	if t == nil {
		return
	}
	t.bytes.Add(n)
	t.active.Store(active)
	now := t.now()
	t.lastBeat.Store(now)
	t.mu.Lock()
	t.pending += n
	if dt := now - t.rateLast; dt > 0 {
		inst := float64(t.pending) * 1e9 / float64(dt)
		w := 1 - math.Exp(-float64(dt)/ewmaTau)
		t.rate += w * (inst - t.rate)
		t.rateLast = now
		t.pending = 0
	}
	t.mu.Unlock()
}

// AddTotal raises the expected-input-bytes total by n (drives ETA).
func (t *ProgressTracker) AddTotal(n int64) {
	if t == nil {
		return
	}
	t.total.Add(n)
}

// AddCache adjusts the live cache-bytes figure by delta (may be negative).
func (t *ProgressTracker) AddCache(delta int64) {
	if t == nil {
		return
	}
	t.cache.Add(delta)
}

// AddFallbacks adds delta NFA-fallback events.
func (t *ProgressTracker) AddFallbacks(delta int64) {
	if t == nil {
		return
	}
	t.fallbacks.Add(delta)
}

// Done marks the component finished; the watchdog stops watching it.
func (t *ProgressTracker) Done() {
	if t == nil {
		return
	}
	t.done.Store(true)
}

func (t *ProgressTracker) snapshot() ProgressSnapshot {
	t.mu.Lock()
	rate := t.rate
	t.mu.Unlock()
	s := ProgressSnapshot{
		Name:        t.name,
		Bytes:       t.bytes.Load(),
		TotalBytes:  t.total.Load(),
		BytesPerSec: rate,
		Active:      t.active.Load(),
		CacheBytes:  t.cache.Load(),
		Fallbacks:   t.fallbacks.Load(),
		Done:        t.done.Load(),
	}
	if !s.Done && rate > 0 && s.TotalBytes > s.Bytes {
		s.ETASeconds = float64(s.TotalBytes-s.Bytes) / rate
	}
	return s
}

// ProgressSnapshot is the serializable state of one tracker. ETASeconds
// is 0 when unknown (no rate yet, no total, or already done).
type ProgressSnapshot struct {
	Name        string  `json:"name"`
	Bytes       int64   `json:"bytes"`
	TotalBytes  int64   `json:"total_bytes"`
	BytesPerSec float64 `json:"bytes_per_sec"`
	Active      int64   `json:"active"`
	CacheBytes  int64   `json:"cache_bytes"`
	Fallbacks   int64   `json:"fallbacks"`
	ETASeconds  float64 `json:"eta_seconds"`
	Done        bool    `json:"done"`
}
