package telemetry

import (
	"bytes"
	"math"
	"testing"
)

func TestProgressBeatRateAndETA(t *testing.T) {
	var now int64
	p := NewProgress()
	p.SetClock(func() int64 { return now })
	tr := p.Tracker("k")
	tr.AddTotal(1000)

	now = 1e9 // 1 s after tracker creation
	tr.Beat(100, 5)
	s := p.Snapshot()
	if len(s) != 1 || s[0].Name != "k" {
		t.Fatalf("snapshot: %+v", s)
	}
	// One fold over 1 s at 100 B/s instantaneous: rate = w*inst, w = 1-e^-1.
	wantRate := (1 - math.Exp(-1)) * 100
	if math.Abs(s[0].BytesPerSec-wantRate) > 1e-9 {
		t.Errorf("rate = %v, want %v", s[0].BytesPerSec, wantRate)
	}
	if s[0].Bytes != 100 || s[0].TotalBytes != 1000 || s[0].Active != 5 {
		t.Errorf("counters: %+v", s[0])
	}
	wantETA := 900 / wantRate
	if math.Abs(s[0].ETASeconds-wantETA) > 1e-9 {
		t.Errorf("eta = %v, want %v", s[0].ETASeconds, wantETA)
	}

	// A beat with no clock movement (coarse clock) accumulates bytes into
	// the pending pool without disturbing the rate.
	tr.Beat(50, 3)
	s = p.Snapshot()
	if s[0].Bytes != 150 {
		t.Errorf("bytes = %d, want 150", s[0].Bytes)
	}
	if math.Abs(s[0].BytesPerSec-wantRate) > 1e-9 {
		t.Errorf("dt=0 beat moved the rate: %v", s[0].BytesPerSec)
	}

	// The pending pool folds on the next beat that advances the clock.
	now = 2e9
	tr.Beat(0, 3)
	s = p.Snapshot()
	if math.Abs(s[0].BytesPerSec-wantRate) < 1e-9 {
		t.Errorf("pending bytes never folded into the rate")
	}

	tr.Done()
	s = p.Snapshot()
	if !s[0].Done || s[0].ETASeconds != 0 {
		t.Errorf("done tracker: %+v", s[0])
	}
}

func TestProgressMergeCommutative(t *testing.T) {
	build := func() []ProgressSnapshot {
		var now int64
		p := NewProgress()
		p.SetClock(func() int64 { return now })
		tr := p.Tracker("k")
		tr.AddTotal(500)
		now = 1e9
		tr.Beat(200, 7)
		tr.AddCache(64)
		tr.AddFallbacks(2)
		return p.Snapshot()
	}
	a, b := build(), build()
	merge := func(first, second []ProgressSnapshot) ProgressSnapshot {
		p := NewProgress()
		p.Merge(first)
		p.Merge(second)
		s := p.Snapshot()
		if len(s) != 1 {
			t.Fatalf("merged snapshot: %+v", s)
		}
		return s[0]
	}
	ab, ba := merge(a, b), merge(b, a)
	if ab != ba {
		t.Fatalf("merge not commutative: %+v vs %+v", ab, ba)
	}
	if ab.Bytes != 400 || ab.CacheBytes != 128 || ab.Fallbacks != 4 {
		t.Errorf("additive fields: %+v", ab)
	}
	if ab.TotalBytes != 500 || ab.Active != 7 {
		t.Errorf("max fields: %+v", ab)
	}
}

func TestProgressStalest(t *testing.T) {
	var now int64 = 10
	p := NewProgress()
	p.SetClock(func() int64 { return now })
	a := p.Tracker("a")
	now = 20
	b := p.Tracker("b")

	name, last, ok := p.Stalest()
	if !ok || name != "a" || last != 10 {
		t.Fatalf("stalest = %q %d %v, want a 10 true", name, last, ok)
	}
	a.Done()
	name, last, ok = p.Stalest()
	if !ok || name != "b" || last != 20 {
		t.Fatalf("after a done: %q %d %v, want b 20 true", name, last, ok)
	}
	b.Done()
	if _, _, ok := p.Stalest(); ok {
		t.Fatal("all done must yield ok=false")
	}
}

func TestProgressWriteJSONEmpty(t *testing.T) {
	var b bytes.Buffer
	if err := NewProgress().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != "[]\n" {
		t.Fatalf("empty progress JSON = %q, want []", got)
	}
}

func TestProgressNilSafe(t *testing.T) {
	var p *Progress
	p.SetClock(nil)
	p.Merge(nil)
	if p.Tracker("x") != nil {
		t.Fatal("nil Progress must hand out nil trackers")
	}
	if p.Snapshot() != nil {
		t.Fatal("nil Progress snapshot must be nil")
	}
	if _, _, ok := p.Stalest(); ok {
		t.Fatal("nil Progress has nothing to stall on")
	}
	var tr *ProgressTracker
	tr.Beat(1, 1)
	tr.AddTotal(1)
	tr.AddCache(1)
	tr.AddFallbacks(1)
	tr.Done()
}
