package telemetry

import (
	"io"
	"sort"
	"strconv"
)

// Prometheus text exposition (format version 0.0.4) over a Registry
// snapshot. The renderer is deterministic: families are emitted in sorted
// output-name order, histogram buckets in ascending bound order, and all
// numbers are formatted with strconv — so two registries with equal
// snapshots render byte-identical pages. That property is what lets the
// golden test assert /metrics stability across -j values: the parallel
// harness merges per-kernel registries canonically (Registry.Merge), so
// the merged snapshot, and hence this page, is independent of worker
// count.
//
// Naming follows Prometheus conventions: every family is prefixed
// "azoo_", characters outside [a-zA-Z0-9_] map to '_', counters gain a
// "_total" suffix, and histograms emit cumulative "_bucket" series with
// an explicit le="+Inf" bucket plus "_sum" and "_count".

// promName sanitizes a registry metric name into a Prometheus family name
// (without suffixes): "sim.symbols" → "azoo_sim_symbols".
func promName(name string) string {
	b := make([]byte, 0, len(name)+5)
	b = append(b, "azoo_"...)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b = append(b, c)
		default:
			b = append(b, '_')
		}
	}
	return string(b)
}

type promFamily struct {
	name string // sanitized family name, including any _total suffix
	typ  string // counter | gauge | histogram
	emit func(b []byte) []byte
}

// WritePrometheus renders the registry's current snapshot in Prometheus
// text format. See WritePrometheusSnapshot for the format contract.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return WritePrometheusSnapshot(w, r.Snapshot())
}

// WritePrometheusSnapshot renders a snapshot in Prometheus text format
// version 0.0.4. Output is byte-deterministic for a given snapshot.
func WritePrometheusSnapshot(w io.Writer, s Snapshot) error {
	fams := make([]promFamily, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for name, v := range s.Counters {
		v := v
		fams = append(fams, promFamily{
			name: promName(name) + "_total",
			typ:  "counter",
			emit: func(b []byte) []byte {
				return strconv.AppendInt(b, v, 10)
			},
		})
	}
	for name, v := range s.Gauges {
		v := v
		fams = append(fams, promFamily{
			name: promName(name),
			typ:  "gauge",
			emit: func(b []byte) []byte {
				return strconv.AppendInt(b, v, 10)
			},
		})
	}
	for name := range s.Histograms {
		fams = append(fams, promFamily{
			name: promName(name),
			typ:  "histogram",
			emit: nil, // histograms render their own series below
		})
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	// Histogram snapshots keyed by sanitized name for the render pass.
	hists := make(map[string]HistogramSnapshot, len(s.Histograms))
	for name, hs := range s.Histograms {
		hists[promName(name)] = hs
	}

	buf := make([]byte, 0, 1<<12)
	for _, f := range fams {
		buf = buf[:0]
		buf = append(buf, "# HELP "...)
		buf = append(buf, f.name...)
		buf = append(buf, " automatazoo "...)
		buf = append(buf, f.typ...)
		buf = append(buf, " metric\n# TYPE "...)
		buf = append(buf, f.name...)
		buf = append(buf, ' ')
		buf = append(buf, f.typ...)
		buf = append(buf, '\n')
		if f.typ == "histogram" {
			hs := hists[f.name]
			var cum int64
			for _, bkt := range hs.Buckets {
				if bkt.UpperBound == -1 {
					continue // overflow folds into +Inf below
				}
				cum += bkt.Count
				buf = append(buf, f.name...)
				buf = append(buf, `_bucket{le="`...)
				buf = strconv.AppendInt(buf, bkt.UpperBound, 10)
				buf = append(buf, `"} `...)
				buf = strconv.AppendInt(buf, cum, 10)
				buf = append(buf, '\n')
			}
			buf = append(buf, f.name...)
			buf = append(buf, `_bucket{le="+Inf"} `...)
			buf = strconv.AppendInt(buf, hs.Count, 10)
			buf = append(buf, '\n')
			buf = append(buf, f.name...)
			buf = append(buf, "_sum "...)
			buf = strconv.AppendInt(buf, hs.Sum, 10)
			buf = append(buf, '\n')
			buf = append(buf, f.name...)
			buf = append(buf, "_count "...)
			buf = strconv.AppendInt(buf, hs.Count, 10)
			buf = append(buf, '\n')
		} else {
			buf = append(buf, f.name...)
			buf = append(buf, ' ')
			buf = f.emit(buf)
			buf = append(buf, '\n')
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}
