package telemetry

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestPromNameSanitizes(t *testing.T) {
	cases := map[string]string{
		"sim.symbols":   "azoo_sim_symbols",
		"rf.model-size": "azoo_rf_model_size",
		"a b/c":         "azoo_a_b_c",
		"Already_OK9":   "azoo_Already_OK9",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestWritePrometheusGolden pins the exposition bytes: sorted families,
// counter _total suffix, cumulative histogram buckets with an explicit
// +Inf, and _sum/_count series. Regenerate with UPDATE_GOLDEN=1.
func TestWritePrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("sim.symbols").Add(1234)
	reg.Counter("sim.reports").Add(7)
	reg.Gauge("rf.model-size").Set(42)
	h := reg.Histogram("sim.frontier", ExpBuckets(1, 4))
	h.Observe(1)
	h.Observe(3)
	h.Observe(100) // overflow: folds into the +Inf bucket only

	var b bytes.Buffer
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "prometheus.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, b.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b.Bytes(), want) {
		t.Fatalf("exposition differs from golden\ngot:\n%s\nwant:\n%s", b.Bytes(), want)
	}
}

// TestWritePrometheusMergeOrderIndependent: rendering a registry merged
// from parts is byte-identical regardless of merge order — the property
// behind /metrics stability across -j values.
func TestWritePrometheusMergeOrderIndependent(t *testing.T) {
	part := func(n int64) Snapshot {
		r := NewRegistry()
		r.Counter("sim.symbols").Add(n)
		r.Gauge("partition.slices").Set(n)
		r.Histogram("sim.frontier", ExpBuckets(1, 3)).Observe(n)
		return r.Snapshot()
	}
	a, b := part(3), part(900)
	render := func(first, second Snapshot) string {
		r := NewRegistry()
		r.Merge(first)
		r.Merge(second)
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	ab, ba := render(a, b), render(b, a)
	if ab != ba {
		t.Fatalf("merge order changed exposition:\n%s\nvs\n%s", ab, ba)
	}
}
