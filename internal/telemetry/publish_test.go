package telemetry

import (
	"expvar"
	"strings"
	"testing"
)

// TestPublishExpvarIdempotent: expvar.Publish panics on duplicate names,
// so republishing (e.g. a second subcommand session in one process, or a
// test exercising the debug server twice) must reuse the slot — and the
// slot must read the most recently published registry.
func TestPublishExpvarIdempotent(t *testing.T) {
	const name = "azoo-test-publish-idempotent"
	r1 := NewRegistry()
	r1.Counter("a").Add(1)
	r1.PublishExpvar(name)

	r2 := NewRegistry()
	r2.Counter("a").Add(5)
	r2.PublishExpvar(name) // must not panic

	v := expvar.Get(name)
	if v == nil {
		t.Fatal("expvar slot missing")
	}
	if s := v.String(); !strings.Contains(s, `"a":5`) {
		t.Fatalf("slot reads stale registry: %s", s)
	}
}
