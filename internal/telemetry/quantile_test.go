package telemetry

import (
	"math"
	"testing"
)

func TestQuantileEmpty(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", ExpBuckets(1, 4))
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("Quantile(%g) of empty histogram = %g, want 0", q, got)
		}
	}
}

func TestQuantileUniform(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []int64{25, 50, 75, 100})
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	for _, tc := range []struct {
		q    float64
		want float64
		tol  float64
	}{
		{0.50, 50, 1},
		{0.90, 90, 3},
		{0.99, 99, 2},
		{1.00, 100, 0}, // P100 is exactly the observed max
	} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > tc.tol {
			t.Errorf("Quantile(%g) = %g, want %g±%g", tc.q, got, tc.want, tc.tol)
		}
	}
}

func TestQuantileClampsRange(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []int64{10})
	h.Observe(4)
	if got := h.Quantile(-1); got < 0 {
		t.Errorf("Quantile(-1) = %g, want >= 0", got)
	}
	if got := h.Quantile(2); got != 4 {
		t.Errorf("Quantile(2) = %g, want max 4", got)
	}
}

func TestQuantileOverflowBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []int64{10}) // overflow holds everything > 10
	h.Observe(500)
	h.Observe(900)
	// Both samples live in the overflow bucket whose upper edge is the
	// observed max; no quantile may exceed it.
	for _, q := range []float64{0.5, 0.9, 1} {
		got := h.Quantile(q)
		if got > 900 {
			t.Errorf("Quantile(%g) = %g, exceeds observed max 900", q, got)
		}
	}
	if got := h.Quantile(1); got != 900 {
		t.Errorf("Quantile(1) = %g, want 900", got)
	}
}

func TestQuantileSingleObservation(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", ExpBuckets(1, 10))
	h.Observe(37)
	if got := h.Quantile(1); got != 37 {
		t.Errorf("Quantile(1) = %g, want 37", got)
	}
	if got := h.Quantile(0.5); got > 37 {
		t.Errorf("Quantile(0.5) = %g, exceeds max 37", got)
	}
}
