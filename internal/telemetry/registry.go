package telemetry

import (
	"encoding/json"
	"expvar"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (set, not accumulated).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Max raises the gauge to n if n exceeds the current value.
func (g *Gauge) Max(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed buckets. Bounds are inclusive
// upper limits; one implicit overflow bucket catches everything above the
// last bound. Observation is lock-free.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1
	sum    atomic.Int64
	count  atomic.Int64
	max    Gauge
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	// Linear scan: telemetry histograms have ~a dozen buckets and the scan
	// is branch-predictable; binary search costs more below ~32 bounds.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
	h.max.Max(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Mean returns the mean observed value, 0 with no observations.
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Max returns the largest observed value, 0 with no observations.
func (h *Histogram) Max() int64 { return h.max.Value() }

// Quantile estimates the q-quantile (q in [0,1]) from the bucket counts by
// linear interpolation within the bucket containing the target rank. The
// overflow bucket's upper edge is the observed maximum, so P100 is exact
// and estimates never exceed Max. Returns 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(n)
	max := float64(h.max.Value())
	var cum int64
	lower := 0.0
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			if i < len(h.bounds) && float64(h.bounds[i]) < max {
				lower = float64(h.bounds[i])
			}
			continue
		}
		upper := max
		if i < len(h.bounds) && float64(h.bounds[i]) < max {
			upper = float64(h.bounds[i])
		}
		if float64(cum)+float64(c) >= target {
			frac := (target - float64(cum)) / float64(c)
			v := lower + frac*(upper-lower)
			if v > max {
				v = max
			}
			return v
		}
		cum += c
		lower = upper
	}
	return max
}

// ExpBuckets returns n exponentially spaced bounds starting at first and
// doubling: first, 2*first, 4*first, ... — the standard shape for
// frontier-size and latency distributions.
func ExpBuckets(first int64, n int) []int64 {
	if first < 1 {
		first = 1
	}
	bounds := make([]int64, n)
	v := first
	for i := range bounds {
		bounds[i] = v
		v *= 2
	}
	return bounds
}

// Registry is a namespace of metrics. Metric constructors are idempotent:
// asking for an existing name returns the existing metric, so independent
// code paths can share counters by name. All methods are safe for
// concurrent use; the metrics themselves are atomic.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds on first use (later calls ignore bounds).
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{
			bounds: append([]int64(nil), bounds...),
			counts: make([]atomic.Int64, len(bounds)+1),
		}
		r.hists[name] = h
	}
	return h
}

// Bucket is one histogram bucket in a snapshot. UpperBound is -1 for the
// overflow bucket.
type Bucket struct {
	UpperBound int64 `json:"le"`
	Count      int64 `json:"count"`
}

// HistogramSnapshot is the serializable state of one histogram.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Mean    float64  `json:"mean"`
	Max     int64    `json:"max"`
	Buckets []Bucket `json:"buckets"`
}

// Snapshot is a point-in-time copy of every metric in a registry. Maps
// serialize with sorted keys, so encoding a snapshot is deterministic.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the current value of every metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Count: h.Count(), Sum: h.sum.Load(), Mean: h.Mean(), Max: h.Max(),
			Buckets: make([]Bucket, 0, len(h.counts)),
		}
		for i := range h.counts {
			b := Bucket{UpperBound: -1, Count: h.counts[i].Load()}
			if i < len(h.bounds) {
				b.UpperBound = h.bounds[i]
			}
			hs.Buckets = append(hs.Buckets, b)
		}
		s.Histograms[name] = hs
	}
	return s
}

// WriteJSON writes the registry snapshot as indented JSON. The output is
// deterministic for a given metric state (keys sort lexically).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Names returns every registered metric name, sorted, for diagnostics.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Merge folds a snapshot into the registry. It is how the parallel
// experiment harnesses combine per-benchmark registries into one at the
// end of a fan-out, so the semantics are chosen to be commutative —
// merging registries A and B into T yields the same T in either order:
//
//   - counters add;
//   - gauges take the maximum of the two values (Set semantics would make
//     the result depend on merge order);
//   - histograms add bucket-wise. A histogram unseen by the target is
//     created with the snapshot's bounds; when bounds differ, each source
//     bucket's count folds into the first target bucket whose bound is >=
//     the source bound (overflow otherwise), and sum/count add and max
//     maxes, so totals and means stay exact even if bucket shapes degrade.
//
// Merge is safe for concurrent use, like every Registry method, but
// deterministic final contents additionally require the inputs themselves
// to be quiescent.
func (r *Registry) Merge(s Snapshot) {
	for name, v := range s.Counters {
		r.Counter(name).Add(v)
	}
	for name, v := range s.Gauges {
		r.Gauge(name).Max(v)
	}
	for name, hs := range s.Histograms {
		bounds := make([]int64, 0, len(hs.Buckets))
		for _, b := range hs.Buckets {
			if b.UpperBound != -1 {
				bounds = append(bounds, b.UpperBound)
			}
		}
		h := r.Histogram(name, bounds)
		for _, b := range hs.Buckets {
			if b.Count == 0 {
				continue
			}
			i := len(h.bounds) // overflow by default
			if b.UpperBound != -1 {
				for j, ub := range h.bounds {
					if ub >= b.UpperBound {
						i = j
						break
					}
				}
			}
			h.counts[i].Add(b.Count)
		}
		h.sum.Add(hs.Sum)
		h.count.Add(hs.Count)
		h.max.Max(hs.Max)
	}
}

// MergeFrom merges another registry's current state (Merge of its
// Snapshot).
func (r *Registry) MergeFrom(other *Registry) {
	if other == nil {
		return
	}
	r.Merge(other.Snapshot())
}

// expvarSlots backs PublishExpvar's idempotency: expvar.Publish panics on
// a duplicate name and offers no unpublish, so each name is published
// exactly once with an expvar.Func that reads the current registry out of
// an atomic slot. Re-publishing a name just swaps the slot — which is
// what subcommand re-entry (tests, future `azoo serve`) needs.
var (
	expvarMu    sync.Mutex
	expvarSlots = map[string]*atomic.Pointer[Registry]{}
)

// PublishExpvar exposes the registry's live snapshot under the given
// expvar name (served at /debug/vars). Unlike raw expvar.Publish, calling
// it again with the same name is safe: the name's expvar binding is
// installed once per process and later calls re-point it at r.
func (r *Registry) PublishExpvar(name string) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	slot, ok := expvarSlots[name]
	if !ok {
		slot = &atomic.Pointer[Registry]{}
		expvarSlots[name] = slot
	}
	// Store before Publish so a concurrent scrape arriving between the
	// two calls never dereferences an empty slot.
	slot.Store(r)
	if !ok {
		expvar.Publish(name, expvar.Func(func() any {
			if cur := slot.Load(); cur != nil {
				return cur.Snapshot()
			}
			return Snapshot{}
		}))
	}
}
