package telemetry

import (
	"sync"
)

// Spans collects a tree of named phase spans — the wall-clock breakdown
// (build / transform / partition / run / merge) behind a run report's
// per-phase timing columns.
//
// Two properties shape the design:
//
//   - Repeated phases aggregate. Starting a name that already exists under
//     the same parent re-times the existing span and accumulates into it
//     (Nanos sums, Count increments), so a segmented workload that calls an
//     engine ten thousand times produces one "sim.run" span with
//     Count == 10000, not ten thousand tree nodes.
//   - Child ordering is deterministic: children appear in first-start
//     order, which is execution order for sequential code and adoption
//     order (see Adopt) for parallel sections.
//
// A nil *Spans and a nil *Span are valid no-op receivers: instrumented
// code calls Start/End unconditionally and the disabled path costs a nil
// check with zero allocations (asserted by the engines' allocguard tests).
//
// The clock is injectable (SetClock) so run-report artifacts can be made
// byte-deterministic in golden tests.
type Spans struct {
	mu    sync.Mutex
	now   func() int64
	roots *Span // sentinel holding the root children
}

// NewSpans returns an empty span collector using the real clock.
func NewSpans() *Spans {
	s := &Spans{now: nowNanos}
	s.roots = &Span{set: s}
	return s
}

// SetClock replaces the collector's clock with now (nil restores the real
// clock). Forked collectors created afterwards inherit the clock; set it
// before instrumented work begins.
func (s *Spans) SetClock(now func() int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if now == nil {
		now = nowNanos
	}
	s.now = now
}

// Fork returns a new empty collector sharing s's clock. Parallel sections
// give each worker a fork and Adopt them in index order after the barrier,
// which keeps final child ordering deterministic regardless of scheduling
// (the same pattern Registry.Merge uses for metrics).
func (s *Spans) Fork() *Spans {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	now := s.now
	s.mu.Unlock()
	f := &Spans{now: now}
	f.roots = &Span{set: f}
	return f
}

// Start begins (or re-times, see the aggregation rule above) a root span.
func (s *Spans) Start(name string) *Span {
	if s == nil {
		return nil
	}
	return s.roots.Start(name)
}

// Adopt merges another collector's root spans into s's roots, name-wise:
// a root of other with no same-named root in s is appended; same-named
// spans accumulate (Nanos, Count) and merge children recursively. other is
// left untouched; a nil receiver or argument is a no-op.
func (s *Spans) Adopt(other *Spans) {
	if s == nil || other == nil {
		return
	}
	other.mu.Lock()
	snap := other.roots.snapshotChildren(other.nowLocked())
	other.mu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.roots.absorb(snap)
}

func (s *Spans) nowLocked() func() int64 { return s.now }

// Snapshot returns a deep copy of the span tree, children in first-start
// order. Spans still running are reported with the time elapsed so far.
func (s *Spans) Snapshot() []SpanSnapshot {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.roots.snapshotChildren(s.now)
}

// Span is one named node of a phase-span tree. All methods are nil-safe
// no-ops, so callers never guard instrumentation sites.
type Span struct {
	owner    *Span
	set      *Spans // only on the sentinel root
	name     string
	nanos    int64
	count    int64
	start    int64
	running  bool
	children []*Span
	byName   map[string]*Span
}

// spansOf walks up to the owning collector.
func (sp *Span) spansOf() *Spans {
	for sp.owner != nil {
		sp = sp.owner
	}
	return sp.set
}

// Start begins (or re-times) the named child span. Calling Start on a
// span that is already running is allowed for a *different* name; starting
// the same name again before End restarts its clock.
func (sp *Span) Start(name string) *Span {
	if sp == nil {
		return nil
	}
	set := sp.spansOf()
	set.mu.Lock()
	defer set.mu.Unlock()
	c, ok := sp.byName[name]
	if !ok {
		c = &Span{owner: sp, name: name}
		if sp.byName == nil {
			sp.byName = map[string]*Span{}
		}
		sp.byName[name] = c
		sp.children = append(sp.children, c)
	}
	c.start = set.now()
	c.running = true
	c.count++
	return c
}

// End stops the span, accumulating the elapsed wall time since its Start.
// Ending a span that is not running is a no-op.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	set := sp.spansOf()
	set.mu.Lock()
	defer set.mu.Unlock()
	if !sp.running {
		return
	}
	sp.running = false
	sp.nanos += set.now() - sp.start
}

// Adopt merges another collector's roots as children of sp (the parallel
// fan-out pattern: fork per worker, adopt under the phase span in index
// order). See Spans.Adopt for the merge rule.
func (sp *Span) Adopt(other *Spans) {
	if sp == nil || other == nil {
		return
	}
	other.mu.Lock()
	snap := other.roots.snapshotChildren(other.nowLocked())
	other.mu.Unlock()
	set := sp.spansOf()
	set.mu.Lock()
	defer set.mu.Unlock()
	sp.absorb(snap)
}

// absorb folds snapshot nodes into sp's children, merging by name.
// Caller holds the collector lock.
func (sp *Span) absorb(snap []SpanSnapshot) {
	for _, n := range snap {
		c, ok := sp.byName[n.Name]
		if !ok {
			c = &Span{owner: sp, name: n.Name}
			if sp.byName == nil {
				sp.byName = map[string]*Span{}
			}
			sp.byName[n.Name] = c
			sp.children = append(sp.children, c)
		}
		c.nanos += n.Nanos
		c.count += n.Count
		c.absorb(n.Children)
	}
}

// snapshotChildren copies sp's children. Caller holds the collector lock;
// now computes elapsed time for still-running spans.
func (sp *Span) snapshotChildren(now func() int64) []SpanSnapshot {
	if len(sp.children) == 0 {
		return nil
	}
	out := make([]SpanSnapshot, len(sp.children))
	for i, c := range sp.children {
		n := c.nanos
		if c.running {
			n += now() - c.start
		}
		out[i] = SpanSnapshot{
			Name:     c.name,
			Nanos:    n,
			Count:    c.count,
			Children: c.snapshotChildren(now),
		}
	}
	return out
}

// SpanSnapshot is the serializable form of one span-tree node. Count is
// the number of Start calls aggregated into the node.
type SpanSnapshot struct {
	Name     string         `json:"name"`
	Nanos    int64          `json:"nanos"`
	Count    int64          `json:"count"`
	Children []SpanSnapshot `json:"children,omitempty"`
}

// FlattenSpans renders a span forest as "/"-joined path → node pairs in
// depth-first first-start order — the alignment key benchdiff uses to
// compare phase breakdowns across two run reports.
func FlattenSpans(snap []SpanSnapshot) []FlatSpan {
	var out []FlatSpan
	var walk func(prefix string, nodes []SpanSnapshot)
	walk = func(prefix string, nodes []SpanSnapshot) {
		for _, n := range nodes {
			path := n.Name
			if prefix != "" {
				path = prefix + "/" + n.Name
			}
			out = append(out, FlatSpan{Path: path, Nanos: n.Nanos, Count: n.Count})
			walk(path, n.Children)
		}
	}
	walk("", snap)
	return out
}

// FlatSpan is one flattened span path.
type FlatSpan struct {
	Path  string
	Nanos int64
	Count int64
}
