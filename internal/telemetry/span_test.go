package telemetry

import (
	"sync"
	"sync/atomic"
	"testing"
)

// fakeClock returns a deterministic clock advancing by step per call
// (atomic: forks share the parent's clock across goroutines).
func fakeClock(step int64) func() int64 {
	var t atomic.Int64
	return func() int64 {
		return t.Add(step)
	}
}

func TestSpanHierarchyAndTiming(t *testing.T) {
	s := NewSpans()
	s.SetClock(fakeClock(10)) // every call advances 10ns

	root := s.Start("run") // t=10
	b := root.Start("build")
	b.End() // start t=20, end t=30 → 10ns
	sc := root.Start("scan")
	sc.End()   // 10ns
	root.End() // start 10, end 60 → 50ns

	snap := s.Snapshot()
	if len(snap) != 1 || snap[0].Name != "run" {
		t.Fatalf("roots = %+v, want single 'run'", snap)
	}
	r := snap[0]
	if r.Nanos != 50 || r.Count != 1 {
		t.Errorf("run = %dns x%d, want 50ns x1", r.Nanos, r.Count)
	}
	if len(r.Children) != 2 || r.Children[0].Name != "build" || r.Children[1].Name != "scan" {
		t.Fatalf("children = %+v, want [build scan] in start order", r.Children)
	}
	for _, c := range r.Children {
		if c.Nanos != 10 || c.Count != 1 {
			t.Errorf("%s = %dns x%d, want 10ns x1", c.Name, c.Nanos, c.Count)
		}
	}
}

func TestSpanAggregatesRepeatedNames(t *testing.T) {
	s := NewSpans()
	s.SetClock(fakeClock(1))
	root := s.Start("run")
	for i := 0; i < 1000; i++ {
		sp := root.Start("scan")
		sp.End()
	}
	root.End()
	snap := s.Snapshot()
	if len(snap[0].Children) != 1 {
		t.Fatalf("repeated Start produced %d nodes, want 1 aggregated node", len(snap[0].Children))
	}
	c := snap[0].Children[0]
	if c.Count != 1000 {
		t.Errorf("count = %d, want 1000", c.Count)
	}
	if c.Nanos != 1000 { // each start/end pair spans exactly one tick
		t.Errorf("nanos = %d, want 1000", c.Nanos)
	}
}

func TestSpanRunningSnapshot(t *testing.T) {
	s := NewSpans()
	s.SetClock(fakeClock(10))
	sp := s.Start("open") // t=10
	// Snapshot while running: elapsed-so-far is reported.
	snap := s.Snapshot() // now() = 20 → 10ns elapsed
	if snap[0].Nanos != 10 {
		t.Errorf("running span snapshot = %dns, want 10", snap[0].Nanos)
	}
	sp.End()
}

func TestSpansForkAdoptDeterministic(t *testing.T) {
	s := NewSpans()
	s.SetClock(fakeClock(1))
	root := s.Start("parallel")
	forks := make([]*Spans, 4)
	for i := range forks {
		forks[i] = s.Fork()
	}
	var wg sync.WaitGroup
	for i := len(forks) - 1; i >= 0; i-- { // start in reverse to shuffle timing
		wg.Add(1)
		go func(f *Spans) {
			defer wg.Done()
			sp := f.Start("work")
			sp.End()
		}(forks[i])
	}
	wg.Wait()
	for _, f := range forks { // adopt in index order
		root.Adopt(f)
	}
	root.End()
	snap := s.Snapshot()
	if len(snap[0].Children) != 1 || snap[0].Children[0].Name != "work" {
		t.Fatalf("adopted children = %+v, want single aggregated 'work'", snap[0].Children)
	}
	if got := snap[0].Children[0].Count; got != 4 {
		t.Errorf("adopted count = %d, want 4", got)
	}
}

func TestSpansAdoptIntoCollectorRoots(t *testing.T) {
	a := NewSpans()
	a.SetClock(fakeClock(1))
	b := a.Fork()
	sp := b.Start("only_b")
	sp.End()
	a.Adopt(b)
	snap := a.Snapshot()
	if len(snap) != 1 || snap[0].Name != "only_b" || snap[0].Count != 1 {
		t.Fatalf("adopted roots = %+v, want [only_b x1]", snap)
	}
}

func TestNilSpansAreNoOps(t *testing.T) {
	var s *Spans
	s.SetClock(fakeClock(1)) // must not panic
	sp := s.Start("x")
	child := sp.Start("y")
	child.End()
	sp.Adopt(s.Fork())
	sp.End()
	s.Adopt(nil)
	if got := s.Snapshot(); got != nil {
		t.Errorf("nil Snapshot = %v, want nil", got)
	}
}

func TestNilSpansZeroAllocs(t *testing.T) {
	var s *Spans
	allocs := testing.AllocsPerRun(200, func() {
		sp := s.Start("scan")
		c := sp.Start("inner")
		c.End()
		sp.End()
	})
	if allocs != 0 {
		t.Errorf("disabled span path allocates %.1f per op, want 0", allocs)
	}
}

func TestFlattenSpans(t *testing.T) {
	snap := []SpanSnapshot{
		{Name: "run", Nanos: 30, Count: 1, Children: []SpanSnapshot{
			{Name: "build", Nanos: 10, Count: 1},
			{Name: "scan", Nanos: 20, Count: 2},
		}},
	}
	flat := FlattenSpans(snap)
	want := []FlatSpan{
		{Path: "run", Nanos: 30, Count: 1},
		{Path: "run/build", Nanos: 10, Count: 1},
		{Path: "run/scan", Nanos: 20, Count: 2},
	}
	if len(flat) != len(want) {
		t.Fatalf("flatten = %+v, want %+v", flat, want)
	}
	for i := range want {
		if flat[i] != want[i] {
			t.Errorf("flat[%d] = %+v, want %+v", i, flat[i], want[i])
		}
	}
}
