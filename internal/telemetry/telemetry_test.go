package telemetry

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// checkGolden compares got against testdata/<name>, rewriting with
// -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// fillRegistry populates a registry with a fixed, deterministic state.
func fillRegistry() *Registry {
	r := NewRegistry()
	r.Counter("sim.symbols").Add(1000)
	r.Counter("sim.active").Add(2345)
	r.Counter("sim.reports").Inc()
	r.Gauge("dfa.states").Set(42)
	h := r.Histogram("sim.frontier", ExpBuckets(1, 4))
	for _, v := range []int64{0, 1, 1, 2, 3, 5, 8, 13, 100} {
		h.Observe(v)
	}
	return r
}

// TestMetricsGolden pins the metrics JSON snapshot schema: map keys sort,
// histogram buckets carry inclusive upper bounds with -1 for overflow.
func TestMetricsGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := fillRegistry().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metrics.golden.json", buf.Bytes())
}

// TestTraceGolden pins the NDJSON trace event schema documented in
// doc.go: one object per line, fixed field order per event kind.
func TestTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	tr := NewNDJSON(&buf)
	tr.OnSymbol(0, 'h')
	tr.OnActivate(0, 7)
	tr.OnReport(0, 7, 1024)
	tr.OnSymbol(1, 0xff)
	tr.OnCacheEvent(1, 3, CacheMiss)
	tr.OnCacheEvent(2, 3, CacheEviction)
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := tr.Events(); got != 6 {
		t.Errorf("events = %d, want 6", got)
	}
	checkGolden(t, "trace.golden.ndjson", buf.Bytes())
}

func TestTraceSampling(t *testing.T) {
	var buf bytes.Buffer
	tr := NewNDJSON(&buf)
	tr.SampleEvery = 10
	for off := int64(0); off < 100; off++ {
		tr.OnSymbol(off, 'x')
		tr.OnActivate(off, 1)
	}
	tr.OnReport(55, 1, 2) // reports ignore sampling
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(buf.String(), "\n")
	// 10 sampled offsets × 2 events + 1 report.
	if lines != 21 {
		t.Errorf("trace lines = %d, want 21", lines)
	}
	if !strings.Contains(buf.String(), `{"ev":"report","off":55,"state":1,"code":2}`) {
		t.Error("report event missing or malformed")
	}
}

func TestRegistryIdempotentAndConcurrent(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Error("Counter not idempotent")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Error("Gauge not idempotent")
	}
	if r.Histogram("h", ExpBuckets(1, 3)) != r.Histogram("h", nil) {
		t.Error("Histogram not idempotent")
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("x").Inc()
				r.Histogram("h", nil).Observe(int64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("x").Value(); got != 8000 {
		t.Errorf("concurrent counter = %d, want 8000", got)
	}
	if got := r.Histogram("h", nil).Count(); got != 8000 {
		t.Errorf("concurrent histogram count = %d, want 8000", got)
	}
}

func TestHistogramStats(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []int64{1, 10})
	if h.Mean() != 0 || h.Max() != 0 {
		t.Error("empty histogram should have zero mean/max")
	}
	for _, v := range []int64{1, 2, 3, 50} {
		h.Observe(v)
	}
	if h.Mean() != 14 {
		t.Errorf("mean = %v, want 14", h.Mean())
	}
	if h.Max() != 50 {
		t.Errorf("max = %v, want 50", h.Max())
	}
	s := r.Snapshot().Histograms["h"]
	// Buckets: ≤1 → 1 obs; ≤10 → 2 obs; overflow → 1 obs.
	want := []int64{1, 2, 1}
	for i, b := range s.Buckets {
		if b.Count != want[i] {
			t.Errorf("bucket %d count = %d, want %d", i, b.Count, want[i])
		}
	}
}

func TestHeatmapRanking(t *testing.T) {
	p := NewStateProfile(5)
	p.Activations[1] = 10
	p.Activations[3] = 30
	p.Activations[4] = 10
	p.Enables[3] = 31
	comp := []int32{0, 0, 1, 1, 2}
	top := p.TopK(2, comp)
	if len(top) != 2 || top[0].State != 3 || top[0].Subgraph != 1 {
		t.Fatalf("TopK = %+v", top)
	}
	// Tie between states 1 and 4 breaks by ID.
	full := p.TopK(0, comp)
	if len(full) != 3 || full[1].State != 1 || full[2].State != 4 {
		t.Fatalf("tie-break wrong: %+v", full)
	}
	if full[0].Share != 0.6 {
		t.Errorf("share = %v, want 0.6", full[0].Share)
	}
	subs := p.TopSubgraphs(10, comp)
	if len(subs) != 3 || subs[0].Subgraph != 1 || subs[0].Activations != 30 {
		t.Fatalf("TopSubgraphs = %+v", subs)
	}
	// Merge combines profiles.
	q := NewStateProfile(5)
	q.Activations[0] = 5
	p.Merge(q)
	if p.Activations[0] != 5 || p.TotalActivations() != 55 {
		t.Errorf("merge failed: %+v", p.Activations)
	}
	var buf bytes.Buffer
	if err := WriteHeatmap(&buf, p.TopK(3, comp), 100); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "#") {
		t.Error("heatmap missing bars")
	}
}
