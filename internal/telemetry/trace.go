package telemetry

import (
	"bufio"
	"io"
	"strconv"
	"sync"
)

// CacheEventKind classifies DFA transition-cache events.
type CacheEventKind uint8

const (
	// CacheHit: the transition for (dstate, byte-class) was already
	// interned. Hits are counted in metrics but, being one per component
	// per byte, are not delivered to tracers.
	CacheHit CacheEventKind = iota
	// CacheMiss: the transition had to be subset-constructed.
	CacheMiss
	// CacheEviction: interned DFA states were abandoned because a
	// component overflowed its budget and fell back to NFA stepping.
	CacheEviction
)

// String returns the NDJSON wire name of the event kind.
func (k CacheEventKind) String() string {
	switch k {
	case CacheHit:
		return "hit"
	case CacheMiss:
		return "miss"
	case CacheEviction:
		return "evict"
	}
	return "unknown"
}

// Tracer receives execution events from an engine. Implementations must be
// cheap: hooks run inside engine hot loops (engines nil-guard every call,
// so a nil tracer costs one predictable branch). State IDs are the
// automaton's dense uint32 IDs; offset is the 0-based input offset.
type Tracer interface {
	// OnSymbol fires once per consumed input symbol, before state updates.
	OnSymbol(offset int64, b byte)
	// OnActivate fires when a state matches the current symbol.
	OnActivate(offset int64, state uint32)
	// OnReport fires for every emitted report.
	OnReport(offset int64, state uint32, code int32)
	// OnCacheEvent fires for DFA transition-cache misses and evictions in
	// the given component (hits are metric-counted, not traced).
	OnCacheEvent(offset int64, component int, kind CacheEventKind)
}

// NDJSON is a Tracer that appends one JSON object per event to a stream —
// the newline-delimited-JSON trace format documented in this package's
// doc.go. Events are hand-formatted (no reflection) and buffered; call
// Flush (or Close) before reading the output.
//
// SampleEvery subsamples the high-volume event classes: symbol and
// activate events are recorded only for offsets where
// offset%SampleEvery == 0. Reports and cache events are always recorded —
// they are rare and usually the whole point of the trace. SampleEvery <= 1
// records everything.
//
// NDJSON is safe for use by one engine at a time; guard with an external
// mutex to share across goroutines.
type NDJSON struct {
	mu          sync.Mutex
	w           *bufio.Writer
	c           io.Closer // underlying closer if the sink has one
	buf         []byte
	SampleEvery int64
	events      int64
	err         error
}

// NewNDJSON returns a tracer writing to w with no sampling (every event).
func NewNDJSON(w io.Writer) *NDJSON {
	t := &NDJSON{w: bufio.NewWriterSize(w, 1<<16), buf: make([]byte, 0, 96)}
	if c, ok := w.(io.Closer); ok {
		t.c = c
	}
	return t
}

func (t *NDJSON) sampled(offset int64) bool {
	return t.SampleEvery <= 1 || offset%t.SampleEvery == 0
}

func (t *NDJSON) write() {
	t.buf = append(t.buf, '}', '\n')
	if _, err := t.w.Write(t.buf); err != nil && t.err == nil {
		t.err = err
	}
	t.events++
}

func (t *NDJSON) begin(ev string, offset int64) {
	t.buf = t.buf[:0]
	t.buf = append(t.buf, `{"ev":"`...)
	t.buf = append(t.buf, ev...)
	t.buf = append(t.buf, `","off":`...)
	t.buf = strconv.AppendInt(t.buf, offset, 10)
}

func (t *NDJSON) field(name string, v int64) {
	t.buf = append(t.buf, ',', '"')
	t.buf = append(t.buf, name...)
	t.buf = append(t.buf, '"', ':')
	t.buf = strconv.AppendInt(t.buf, v, 10)
}

// OnSymbol implements Tracer.
func (t *NDJSON) OnSymbol(offset int64, b byte) {
	if !t.sampled(offset) {
		return
	}
	t.mu.Lock()
	t.begin("symbol", offset)
	t.field("byte", int64(b))
	t.write()
	t.mu.Unlock()
}

// OnActivate implements Tracer.
func (t *NDJSON) OnActivate(offset int64, state uint32) {
	if !t.sampled(offset) {
		return
	}
	t.mu.Lock()
	t.begin("activate", offset)
	t.field("state", int64(state))
	t.write()
	t.mu.Unlock()
}

// OnReport implements Tracer.
func (t *NDJSON) OnReport(offset int64, state uint32, code int32) {
	t.mu.Lock()
	t.begin("report", offset)
	t.field("state", int64(state))
	t.field("code", int64(code))
	t.write()
	t.mu.Unlock()
}

// OnCacheEvent implements Tracer.
func (t *NDJSON) OnCacheEvent(offset int64, component int, kind CacheEventKind) {
	t.mu.Lock()
	t.begin("cache", offset)
	t.field("comp", int64(component))
	t.buf = append(t.buf, `,"kind":"`...)
	t.buf = append(t.buf, kind.String()...)
	t.buf = append(t.buf, '"')
	t.write()
	t.mu.Unlock()
}

// Events returns the number of events written so far.
func (t *NDJSON) Events() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.events
}

// Flush drains the write buffer and returns the first error seen.
func (t *NDJSON) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.w.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	return t.err
}

// Close flushes and closes the underlying writer when it is an io.Closer.
func (t *NDJSON) Close() error {
	err := t.Flush()
	if t.c != nil {
		if cerr := t.c.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}
