package telemetry

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// StallReport is what the watchdog hands its callback when a component
// goes quiet: the stalled component's name, how long it has been silent,
// and a full goroutine stack dump taken at detection time.
type StallReport struct {
	Component  string
	QuietNanos int64
	Stacks     []byte
}

// Watchdog watches a Progress aggregator's per-component heartbeat
// timestamps and fires a callback once when any not-yet-done component
// has been quiet for longer than the configured period. Detection is
// clock-seam friendly: Poll does one check against the aggregator's
// injected clock (fake-clock testable), while Start runs Poll on a real
// ticker for production use.
//
// The watchdog fires at most once per run — a stalled process needs one
// postmortem, not a stream of them.
type Watchdog struct {
	prog    *Progress
	quiet   int64 // nanoseconds
	onStall func(StallReport)
	fired   atomic.Bool
	stop    chan struct{}
	mu      sync.Mutex
	started bool
}

// NewWatchdog returns a watchdog declaring a stall after quiet with no
// heartbeat. A nil Progress, non-positive quiet, or nil callback yields a
// nil watchdog (valid no-op receiver).
func NewWatchdog(p *Progress, quiet time.Duration, onStall func(StallReport)) *Watchdog {
	if p == nil || quiet <= 0 || onStall == nil {
		return nil
	}
	return &Watchdog{prog: p, quiet: quiet.Nanoseconds(), onStall: onStall, stop: make(chan struct{})}
}

// Poll performs one stall check using the aggregator's clock, firing the
// callback (once, ever) if the stalest live component has been quiet
// longer than the configured period. Returns true if the callback fired
// on this call.
func (w *Watchdog) Poll() bool {
	if w == nil || w.fired.Load() {
		return false
	}
	name, lastBeat, ok := w.prog.Stalest()
	if !ok {
		return false
	}
	w.prog.mu.Lock()
	now := w.prog.now()
	w.prog.mu.Unlock()
	q := now - lastBeat
	if q < w.quiet {
		return false
	}
	if !w.fired.CompareAndSwap(false, true) {
		return false
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	w.onStall(StallReport{Component: name, QuietNanos: q, Stacks: buf[:n]})
	return true
}

// Start launches the polling goroutine; the interval is a quarter of the
// quiet period, clamped to [10ms, 1s]. Calling Start more than once is a
// no-op. (time.NewTicker, not time.Now, drives the loop — the clock the
// stall decision reads is still the aggregator's injectable one.)
func (w *Watchdog) Start() {
	if w == nil {
		return
	}
	w.mu.Lock()
	if w.started {
		w.mu.Unlock()
		return
	}
	w.started = true
	w.mu.Unlock()
	interval := time.Duration(w.quiet / 4)
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	if interval > time.Second {
		interval = time.Second
	}
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-w.stop:
				return
			case <-t.C:
				if w.Poll() {
					return
				}
			}
		}
	}()
}

// Stop terminates the polling goroutine. Safe to call multiple times and
// on a watchdog that was never started.
func (w *Watchdog) Stop() {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	select {
	case <-w.stop:
	default:
		close(w.stop)
	}
}
