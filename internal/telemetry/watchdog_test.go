package telemetry

import (
	"strings"
	"testing"
	"time"
)

func TestWatchdogPollFakeClock(t *testing.T) {
	var now int64
	p := NewProgress()
	p.SetClock(func() int64 { return now })
	p.Tracker("slow")

	var got StallReport
	fired := 0
	w := NewWatchdog(p, time.Second, func(r StallReport) { got = r; fired++ })
	if w.Poll() {
		t.Fatal("fired with no quiet time")
	}
	now = int64(time.Second) - 1
	if w.Poll() {
		t.Fatal("fired before the quiet period elapsed")
	}
	now = int64(2 * time.Second)
	if !w.Poll() {
		t.Fatal("did not fire after quiet period")
	}
	if got.Component != "slow" || got.QuietNanos != int64(2*time.Second) {
		t.Errorf("report: %q quiet %d", got.Component, got.QuietNanos)
	}
	if !strings.Contains(string(got.Stacks), "goroutine") {
		t.Error("stall report missing goroutine stacks")
	}
	// Fires at most once, ever.
	now = int64(10 * time.Second)
	if w.Poll() || fired != 1 {
		t.Fatalf("watchdog fired again (fired=%d)", fired)
	}
}

func TestWatchdogSkipsDoneTrackers(t *testing.T) {
	var now int64
	p := NewProgress()
	p.SetClock(func() int64 { return now })
	p.Tracker("k").Done()
	w := NewWatchdog(p, time.Millisecond, func(StallReport) { t.Error("fired on a done tracker") })
	now = int64(time.Hour)
	if w.Poll() {
		t.Fatal("Poll fired with every tracker done")
	}
}

func TestNewWatchdogNilCases(t *testing.T) {
	p := NewProgress()
	f := func(StallReport) {}
	if NewWatchdog(nil, time.Second, f) != nil {
		t.Error("nil progress must yield nil watchdog")
	}
	if NewWatchdog(p, 0, f) != nil {
		t.Error("zero quiet must yield nil watchdog")
	}
	if NewWatchdog(p, time.Second, nil) != nil {
		t.Error("nil callback must yield nil watchdog")
	}
	var w *Watchdog
	if w.Poll() {
		t.Error("nil watchdog fired")
	}
	w.Start()
	w.Stop()
}

func TestWatchdogStartFiresAndStops(t *testing.T) {
	p := NewProgress()
	p.Tracker("x") // beats once at creation, then goes silent
	ch := make(chan StallReport, 1)
	w := NewWatchdog(p, 40*time.Millisecond, func(r StallReport) { ch <- r })
	w.Start()
	w.Start() // idempotent
	select {
	case r := <-ch:
		if r.Component != "x" {
			t.Errorf("component = %q, want x", r.Component)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("started watchdog never fired")
	}
	w.Stop()
	w.Stop() // idempotent
}
