package transform_test

import (
	"fmt"

	"automatazoo/internal/automata"
	"automatazoo/internal/regex"
	"automatazoo/internal/transform"
)

// Prefix merging folds the shared prefixes of a rule set — VASim's
// standard optimization, the source of Table I's "Compressed States"
// column.
func ExamplePrefixMerge() {
	b := automata.NewBuilder()
	for i, pat := range []string{"handle", "handler", "handles"} {
		parsed, err := regex.Parse(pat, 0)
		if err != nil {
			panic(err)
		}
		if _, err := regex.CompileInto(b, parsed, int32(i)); err != nil {
			panic(err)
		}
	}
	a, err := b.Build()
	if err != nil {
		panic(err)
	}
	merged, removed := transform.PrefixMerge(a)
	fmt.Printf("%d states -> %d (removed %d)\n",
		a.NumStates(), merged.NumStates(), removed)
	// Output:
	// 20 states -> 9 (removed 11)
}
