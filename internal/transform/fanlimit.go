package transform

import (
	"fmt"

	"automatazoo/internal/automata"
)

// LimitFanOut rewrites the automaton so no STE has more than max outgoing
// edges, the routing constraint spatial fabrics impose (the Micron AP's
// routing matrix bounds per-STE drive). A state with excess fan-out is
// replicated: each copy carries the same class/start/report and a subset
// of the successors, and every predecessor drives every copy, so all
// copies match in lockstep and the language is unchanged — VASim's
// fan-out enforcement strategy. Splitting raises predecessor fan-out, so
// the pass iterates to a fixpoint (bounded; returns an error if max is
// too small to converge, e.g. below the copy-group size forced by a
// self-loop).
//
// Counters are never split (they hold runtime state).
func LimitFanOut(a *automata.Automaton, max int) (*automata.Automaton, error) {
	lim, _, err := LimitFanOutMapped(a, max)
	return lim, err
}

// LimitFanOutMapped is LimitFanOut returning additionally the state
// replication map composed across all splitting iterations: copies[old]
// lists every final state derived from original state old, for
// provenance propagation.
func LimitFanOutMapped(a *automata.Automaton, max int) (*automata.Automaton, [][]automata.StateID, error) {
	if max < 2 {
		return nil, nil, fmt.Errorf("transform: fan-out limit must be >= 2")
	}
	cur := a
	// composed[orig] lists cur-automaton states derived from orig.
	composed := make([][]automata.StateID, a.NumStates())
	for i := range composed {
		composed[i] = []automata.StateID{automata.StateID(i)}
	}
	for iter := 0; iter < 64; iter++ {
		changed, next, step, err := limitFanOutOnce(cur, max)
		if err != nil {
			return nil, nil, err
		}
		if !changed {
			return cur, composed, nil
		}
		nextComposed := make([][]automata.StateID, len(composed))
		for orig, list := range composed {
			for _, c := range list {
				nextComposed[orig] = append(nextComposed[orig], step[c]...)
			}
		}
		composed, cur = nextComposed, next
	}
	return nil, nil, fmt.Errorf("transform: fan-out limiting did not converge at max=%d", max)
}

func limitFanOutOnce(a *automata.Automaton, max int) (bool, *automata.Automaton, [][]automata.StateID, error) {
	n := a.NumStates()
	over := false
	for i := 0; i < n && !over; i++ {
		if a.OutDegree(automata.StateID(i)) > max && a.Kind(automata.StateID(i)) == automata.KindSTE {
			over = true
		}
	}
	if !over {
		return false, a, nil, nil
	}
	b := automata.NewBuilder()
	// copies[old] lists the new IDs of old's replicas (len 1 when not
	// split).
	copies := make([][]automata.StateID, n)
	hasSelf := func(id automata.StateID) bool {
		for _, t := range a.Succ(id) {
			if t == id {
				return true
			}
		}
		return false
	}
	for i := 0; i < n; i++ {
		id := automata.StateID(i)
		if a.Kind(id) == automata.KindCounter {
			cfg, _ := a.CounterConfig(id)
			nid := b.AddCounter(cfg.Target, cfg.Mode)
			if a.IsReport(id) {
				b.SetReport(nid, a.ReportCode(id))
			}
			copies[i] = []automata.StateID{nid}
			continue
		}
		deg := a.OutDegree(id)
		k := 1
		if deg > max {
			// Self-loop copies must drive the whole copy group, consuming
			// k slots of each copy's budget; solve k(max-k) >= deg-k for
			// the smallest workable k, or the plain ceiling without one.
			if hasSelf(id) {
				found := false
				for k = 2; k < max; k++ {
					if k*(max-k) >= deg-1 { // non-self successors per group
						found = true
						break
					}
				}
				if !found {
					return false, nil, nil, fmt.Errorf(
						"transform: state %d (self-loop, fan-out %d) cannot meet limit %d", id, deg, max)
				}
			} else {
				k = (deg + max - 1) / max
			}
		}
		copies[i] = make([]automata.StateID, k)
		for c := 0; c < k; c++ {
			nid := b.AddSTE(a.Class(id), a.Start(id))
			// Only the first copy reports: replicas fire in lockstep and
			// would otherwise duplicate every report.
			if a.IsReport(id) && c == 0 {
				b.SetReport(nid, a.ReportCode(id))
			}
			copies[i][c] = nid
		}
	}
	// Wire edges: for every original edge u→v, every copy of u drives
	// copies of v; when u is split, its non-self successors are
	// partitioned round-robin across u's copies. Self-loops become full
	// copy-group cliques.
	for i := 0; i < n; i++ {
		id := automata.StateID(i)
		ucopies := copies[i]
		var nonSelf []automata.StateID
		self := false
		for _, t := range a.Succ(id) {
			if t == id {
				self = true
			} else {
				nonSelf = append(nonSelf, t)
			}
		}
		if self {
			for _, uc := range ucopies {
				for _, uc2 := range ucopies {
					b.AddEdge(uc, uc2)
				}
			}
		}
		if len(ucopies) == 1 {
			for _, t := range nonSelf {
				for _, vc := range copies[t] {
					b.AddEdge(ucopies[0], vc)
				}
			}
			continue
		}
		// Partition: successor j goes to copy j%k. A successor that was
		// itself split contributes all its copies to the same partition
		// slot sequence.
		for j, t := range nonSelf {
			uc := ucopies[j%len(ucopies)]
			for _, vc := range copies[t] {
				b.AddEdge(uc, vc)
			}
		}
	}
	nb, err := b.Build()
	return true, nb, copies, err
}

// MaxFanOut returns the largest STE out-degree in the automaton.
func MaxFanOut(a *automata.Automaton) int {
	best := 0
	for i := 0; i < a.NumStates(); i++ {
		if d := a.OutDegree(automata.StateID(i)); d > best {
			best = d
		}
	}
	return best
}

// MaxFanIn returns the largest in-degree in the automaton.
func MaxFanIn(a *automata.Automaton) int {
	n := a.NumStates()
	indeg := make([]int, n)
	for i := 0; i < n; i++ {
		for _, t := range a.Succ(automata.StateID(i)) {
			indeg[t]++
		}
	}
	best := 0
	for _, d := range indeg {
		if d > best {
			best = d
		}
	}
	return best
}
