package transform

import (
	"testing"

	"automatazoo/internal/automata"
	"automatazoo/internal/charset"
	"automatazoo/internal/mesh"
	"automatazoo/internal/randx"
)

func TestLimitFanOutSimpleSplit(t *testing.T) {
	// One state fanning to 10 literal tails.
	b := automata.NewBuilder()
	head := b.AddSTE(charset.Single('x'), automata.StartAllInput)
	for i := 0; i < 10; i++ {
		tail := b.AddSTE(charset.Single(byte('a'+i)), automata.StartNone)
		b.AddEdge(head, tail)
		b.SetReport(tail, int32(i))
	}
	a := b.MustBuild()
	lim, err := LimitFanOut(a, 4)
	if err != nil {
		t.Fatal(err)
	}
	if MaxFanOut(lim) > 4 {
		t.Fatalf("fan-out still %d", MaxFanOut(lim))
	}
	// Behaviour preserved on all two-byte inputs.
	for i := 0; i < 10; i++ {
		in := []byte{'x', byte('a' + i)}
		if !sameReports(reportsOf(a, in), reportsOf(lim, in)) {
			t.Fatalf("reports differ for %q", in)
		}
	}
}

func TestLimitFanOutNoop(t *testing.T) {
	a := compile(t, "abc")
	lim, err := LimitFanOut(a, 4)
	if err != nil {
		t.Fatal(err)
	}
	if lim.NumStates() != a.NumStates() {
		t.Fatal("noop pass changed the automaton")
	}
}

func TestLimitFanOutLevenshteinEquivalence(t *testing.T) {
	// Levenshtein meshes are the fan-out-heavy family (Table I: 11+
	// edges/node at d=10); the limited automaton must match identically.
	rng := randx.New(31)
	b := automata.NewBuilder()
	pattern := mesh.RandomDNA(rng, 9)
	if err := mesh.BuildLevenshtein(b, pattern, 3, 0); err != nil {
		t.Fatal(err)
	}
	a := b.MustBuild()
	before := MaxFanOut(a)
	if before <= 6 {
		t.Fatalf("test premise broken: fan-out only %d", before)
	}
	lim, err := LimitFanOut(a, 6)
	if err != nil {
		t.Fatal(err)
	}
	if MaxFanOut(lim) > 6 {
		t.Fatalf("fan-out still %d", MaxFanOut(lim))
	}
	if lim.NumStates() <= a.NumStates() {
		t.Fatal("splitting should add states")
	}
	input := mesh.RandomDNA(rng, 4000)
	got := reportsOf(lim, input)
	want := reportsOf(a, input)
	// Compare distinct offsets (replica elimination keeps one reporter per
	// split group, so multiplicities are preserved too — assert both).
	if !sameReports(got, want) {
		t.Fatalf("reports differ: %d vs %d entries", len(got), len(want))
	}
}

func TestLimitFanOutSelfLoops(t *testing.T) {
	// Self-looping state with wide fan-out (gap states do this).
	b := automata.NewBuilder()
	g := b.AddSTE(charset.All(), automata.StartAllInput)
	b.AddEdge(g, g)
	for i := 0; i < 9; i++ {
		tail := b.AddSTE(charset.Single(byte('a'+i)), automata.StartNone)
		b.AddEdge(g, tail)
		b.SetReport(tail, int32(i))
	}
	a := b.MustBuild()
	// A self-looping split needs k copies in a clique plus k(max-k)
	// partition slots: 9 non-self successors fit at max=6 (k=3), not 5.
	if _, err := LimitFanOut(a, 5); err == nil {
		t.Fatal("limit 5 should be unsatisfiable for a 10-way self-loop state")
	}
	lim, err := LimitFanOut(a, 6)
	if err != nil {
		t.Fatal(err)
	}
	if MaxFanOut(lim) > 6 {
		t.Fatalf("fan-out still %d", MaxFanOut(lim))
	}
	in := []byte{'q', 'q', 'c'}
	if !sameReports(reportsOf(a, in), reportsOf(lim, in)) {
		t.Fatal("self-loop split changed behaviour")
	}
}

func TestLimitFanOutErrors(t *testing.T) {
	a := compile(t, "abc")
	if _, err := LimitFanOut(a, 1); err == nil {
		t.Fatal("limit 1 accepted")
	}
	// A self-loop state with enormous fan-out cannot satisfy a tiny limit.
	b := automata.NewBuilder()
	g := b.AddSTE(charset.All(), automata.StartAllInput)
	b.AddEdge(g, g)
	for i := 0; i < 200; i++ {
		tail := b.AddSTE(charset.Single(byte(i)), automata.StartNone)
		b.AddEdge(g, tail)
	}
	if _, err := LimitFanOut(b.MustBuild(), 3); err == nil {
		t.Fatal("unsatisfiable self-loop limit accepted")
	}
}

func TestMaxFanStats(t *testing.T) {
	b := automata.NewBuilder()
	x := b.AddSTE(charset.Single('x'), automata.StartAllInput)
	y := b.AddSTE(charset.Single('y'), automata.StartNone)
	z := b.AddSTE(charset.Single('z'), automata.StartNone)
	b.AddEdge(x, y)
	b.AddEdge(x, z)
	b.AddEdge(y, z)
	a := b.MustBuild()
	if MaxFanOut(a) != 2 || MaxFanIn(a) != 2 {
		t.Fatalf("fanout=%d fanin=%d", MaxFanOut(a), MaxFanIn(a))
	}
}
