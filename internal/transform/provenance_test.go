package transform

import (
	"testing"

	"automatazoo/internal/attr"
	"automatazoo/internal/automata"
	"automatazoo/internal/regex"
)

// compileTagged compiles each pattern under an attr scope named "p<i>"
// with report code i, so pattern ID i owns code i by construction.
func compileTagged(t *testing.T, patterns ...string) (*automata.Automaton, *attr.Provenance) {
	t.Helper()
	b := automata.NewBuilder()
	tg := attr.NewTagger(b)
	for i, p := range patterns {
		tg.Begin("p" + string(rune('0'+i)))
		parsed, err := regex.Parse(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := regex.CompileInto(b, parsed, int32(i)); err != nil {
			t.Fatal(err)
		}
	}
	prov := tg.Provenance()
	return b.MustBuild(), prov
}

// checkReportOrigins asserts the provenance invariant that every transform
// must preserve: each report state with code c still carries pattern c
// among its origins.
func checkReportOrigins(t *testing.T, stage string, a *automata.Automaton, prov *attr.Provenance) {
	t.Helper()
	if prov.NumStates() != a.NumStates() {
		t.Fatalf("%s: provenance covers %d states, automaton has %d", stage, prov.NumStates(), a.NumStates())
	}
	for _, s := range a.Reports() {
		code := a.ReportCode(s)
		found := false
		for _, id := range prov.Origins(s) {
			if id == code {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s: report state %d (code %d) lost its origin: %v", stage, s, code, prov.Origins(s))
		}
	}
}

func TestPrefixMergeMappedProvenance(t *testing.T) {
	a, prov := compileTagged(t, "hello", "help")
	m, removed, remap := PrefixMergeMapped(a)
	if removed == 0 {
		t.Fatal("shared prefix not merged — test premise broken")
	}
	mprov := prov.Apply(remap, m.NumStates())
	checkReportOrigins(t, "prefix-merge", m, mprov)
	// The fused "hel" prefix states must now carry both origins.
	merged := 0
	for s := 0; s < m.NumStates(); s++ {
		if len(mprov.Origins(automata.StateID(s))) == 2 {
			merged++
		}
	}
	if merged != 3 {
		t.Fatalf("expected 3 two-origin merged states, got %d", merged)
	}
}

func TestTrimMappedProvenance(t *testing.T) {
	a, prov := compileTagged(t, "ab", "cd")
	m, _, remap := TrimMapped(a)
	mprov := prov.Apply(remap, m.NumStates())
	checkReportOrigins(t, "trim", m, mprov)
}

func TestWidenMappedProvenance(t *testing.T) {
	a, prov := compileTagged(t, "abc", "xyz")
	m, copies, err := WidenMapped(a)
	if err != nil {
		t.Fatal(err)
	}
	mprov := prov.ApplyMulti(copies, m.NumStates())
	checkReportOrigins(t, "widen", m, mprov)
	// Widening replicates; no state may fall out of attribution.
	for s := 0; s < m.NumStates(); s++ {
		if len(mprov.Origins(automata.StateID(s))) == 0 {
			t.Fatalf("widen: state %d lost all origins", s)
		}
	}
}

func TestLimitFanOutMappedProvenance(t *testing.T) {
	// Alternation forces a high fan-out start that fan-limiting replicates.
	a, prov := compileTagged(t, "a(b|c|d|e|f|g)h", "zq")
	m, copies, err := LimitFanOutMapped(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	mprov := prov.ApplyMulti(copies, m.NumStates())
	checkReportOrigins(t, "fan-limit", m, mprov)
}

// TestProvenanceSurvivesTransformChain threads one provenance through
// every mapped pass in sequence — merge, trim, fan-limit, widen — and
// checks the report-origin invariant after each stage.
func TestProvenanceSurvivesTransformChain(t *testing.T) {
	a, prov := compileTagged(t, "hello", "help", "hero")

	m, _, remap := PrefixMergeMapped(a)
	prov = prov.Apply(remap, m.NumStates())
	checkReportOrigins(t, "chain/prefix-merge", m, prov)

	tr, _, tremap := TrimMapped(m)
	prov = prov.Apply(tremap, tr.NumStates())
	checkReportOrigins(t, "chain/trim", tr, prov)

	fl, copies, err := LimitFanOutMapped(tr, 2)
	if err != nil {
		t.Fatal(err)
	}
	prov = prov.ApplyMulti(copies, fl.NumStates())
	checkReportOrigins(t, "chain/fan-limit", fl, prov)

	w, wcopies, err := WidenMapped(fl)
	if err != nil {
		t.Fatal(err)
	}
	prov = prov.ApplyMulti(wcopies, w.NumStates())
	checkReportOrigins(t, "chain/widen", w, prov)
}
