// Package transform implements the automata transformations the suite's
// methodology depends on:
//
//   - PrefixMerge: VASim's standard prefix-merging optimization, used to
//     produce the "Compressed States" column of Table I;
//   - Widen: the YARA "wide" transformation (16-bit symbols with zero high
//     bytes) implemented as zero-matching pad states;
//   - Trim: removal of states unreachable from any start state.
//
// All transformations return new frozen automata; inputs are never
// modified.
package transform

import (
	"fmt"
	"sort"

	"automatazoo/internal/automata"
	"automatazoo/internal/charset"
)

// PrefixMerge repeatedly merges states that are indistinguishable from the
// input's point of view: same character class, same start type, same
// report disposition, and identical predecessor sets. Two such states are
// enabled under exactly the same conditions and match exactly the same
// symbols, so folding them (unioning their out-edges) preserves the
// automaton's report behaviour while removing duplicated pattern prefixes —
// VASim's standard optimization. Counter elements are never merged.
//
// Returns the compressed automaton and the number of states removed.
func PrefixMerge(a *automata.Automaton) (*automata.Automaton, int) {
	m, removed, _ := PrefixMergeMapped(a)
	return m, removed
}

// PrefixMergeMapped is PrefixMerge returning additionally the state
// remap: remap[old] is the new ID of old state old — merged-away states
// map to their surviving representative's new ID, so provenance layers
// (internal/attr) can union origin sets across a merge.
func PrefixMergeMapped(a *automata.Automaton) (*automata.Automaton, int, []automata.StateID) {
	n := a.NumStates()
	// rep[i] is the canonical representative of state i under merging.
	rep := make([]automata.StateID, n)
	for i := range rep {
		rep[i] = automata.StateID(i)
	}
	find := func(x automata.StateID) automata.StateID {
		for rep[x] != x {
			rep[x] = rep[rep[x]] // path halving
			x = rep[x]
		}
		return x
	}

	for pass := 0; ; pass++ {
		// Signature: class handle, start, report flag+code, kind, and the
		// canonicalized sorted predecessor multiset.
		pred := make([][]automata.StateID, n)
		for s := 0; s < n; s++ {
			cs := find(automata.StateID(s))
			for _, t := range a.Succ(automata.StateID(s)) {
				ct := find(t)
				pred[ct] = append(pred[ct], cs)
			}
		}
		groups := map[string][]automata.StateID{}
		for s := 0; s < n; s++ {
			id := automata.StateID(s)
			if find(id) != id || a.Kind(id) == automata.KindCounter {
				continue
			}
			ps := pred[id]
			sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
			// Deduplicate canonical predecessors.
			uniq := ps[:0]
			for i, p := range ps {
				if i == 0 || p != ps[i-1] {
					uniq = append(uniq, p)
				}
			}
			key := signature(a, id, uniq)
			groups[key] = append(groups[key], id)
		}
		merged := 0
		for _, g := range groups {
			for _, other := range g[1:] {
				rep[other] = g[0]
				merged++
			}
		}
		if merged == 0 {
			break
		}
	}

	// Rebuild with representatives only.
	b := automata.NewBuilder()
	newID := make([]automata.StateID, n)
	for i := range newID {
		newID[i] = automata.NoState
	}
	removed := 0
	for s := 0; s < n; s++ {
		id := automata.StateID(s)
		if find(id) != id {
			removed++
			continue
		}
		var nid automata.StateID
		if a.Kind(id) == automata.KindCounter {
			cfg, _ := a.CounterConfig(id)
			nid = b.AddCounter(cfg.Target, cfg.Mode)
		} else {
			nid = b.AddSTE(a.Class(id), a.Start(id))
		}
		if a.IsReport(id) {
			b.SetReport(nid, a.ReportCode(id))
		}
		newID[id] = nid
	}
	for s := 0; s < n; s++ {
		id := automata.StateID(s)
		from := newID[find(id)]
		for _, t := range a.Succ(id) {
			b.AddEdge(from, newID[find(t)])
		}
	}
	// Remap every state (not just survivors) to its representative's new
	// ID for provenance propagation.
	remap := make([]automata.StateID, n)
	for s := 0; s < n; s++ {
		remap[s] = newID[find(automata.StateID(s))]
	}
	return b.MustBuild(), removed, remap
}

func signature(a *automata.Automaton, id automata.StateID, pred []automata.StateID) string {
	buf := make([]byte, 0, 16+len(pred)*4)
	h := a.ClassHandle(id)
	buf = append(buf, byte(h), byte(h>>8), byte(h>>16), byte(h>>24))
	buf = append(buf, byte(a.Start(id)))
	if a.IsReport(id) {
		c := a.ReportCode(id)
		buf = append(buf, 1, byte(c), byte(c>>8), byte(c>>16), byte(c>>24))
	} else {
		buf = append(buf, 0, 0, 0, 0, 0)
	}
	for _, p := range pred {
		buf = append(buf, byte(p), byte(p>>8), byte(p>>16), byte(p>>24))
	}
	return string(buf)
}

// Widen converts a byte-pattern automaton into its "wide" (UTF-16LE-style)
// form: every character is followed by a zero byte, implemented by routing
// every original transition through a fresh pad state matching only 0x00.
// Reports move onto the pad state that follows the original reporting
// state, so a widened match spans the full widened pattern. The result has
// exactly 2x the states. Counter automata are not supported.
func Widen(a *automata.Automaton) (*automata.Automaton, error) {
	w, _, err := WidenMapped(a)
	return w, err
}

// WidenMapped is Widen returning additionally the state replication map:
// copies[old] lists the new states derived from old state old (its
// widened original and its pad state), for provenance propagation.
func WidenMapped(a *automata.Automaton) (*automata.Automaton, [][]automata.StateID, error) {
	if a.NumCounters() > 0 {
		return nil, nil, fmt.Errorf("transform: cannot widen automata with counters")
	}
	n := a.NumStates()
	b := automata.NewBuilder()
	orig := make([]automata.StateID, n)
	pad := make([]automata.StateID, n)
	zero := charset.Single(0)
	for i := 0; i < n; i++ {
		id := automata.StateID(i)
		orig[i] = b.AddSTE(a.Class(id), a.Start(id))
		pad[i] = b.AddSTE(zero, automata.StartNone)
		b.AddEdge(orig[i], pad[i])
		if a.IsReport(id) {
			b.SetReport(pad[i], a.ReportCode(id))
		}
	}
	for i := 0; i < n; i++ {
		for _, t := range a.Succ(automata.StateID(i)) {
			b.AddEdge(pad[i], orig[t])
		}
	}
	w, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	copies := make([][]automata.StateID, n)
	for i := 0; i < n; i++ {
		copies[i] = []automata.StateID{orig[i], pad[i]}
	}
	return w, copies, nil
}

// Trim removes states unreachable from any start state, returning the
// trimmed automaton and the number of removed states.
func Trim(a *automata.Automaton) (*automata.Automaton, int) {
	m, removed, _ := TrimMapped(a)
	return m, removed
}

// TrimMapped is Trim returning additionally the state remap: remap[old]
// is the new ID of old state old, or automata.NoState when it was
// unreachable and dropped.
func TrimMapped(a *automata.Automaton) (*automata.Automaton, int, []automata.StateID) {
	reach := a.ReachableFromStarts()
	n := a.NumStates()
	b := automata.NewBuilder()
	newID := make([]automata.StateID, n)
	removed := 0
	for i := 0; i < n; i++ {
		id := automata.StateID(i)
		if !reach[i] {
			newID[i] = automata.NoState
			removed++
			continue
		}
		if a.Kind(id) == automata.KindCounter {
			cfg, _ := a.CounterConfig(id)
			newID[i] = b.AddCounter(cfg.Target, cfg.Mode)
		} else {
			newID[i] = b.AddSTE(a.Class(id), a.Start(id))
		}
		if a.IsReport(id) {
			b.SetReport(newID[i], a.ReportCode(id))
		}
	}
	for i := 0; i < n; i++ {
		if newID[i] == automata.NoState {
			continue
		}
		for _, t := range a.Succ(automata.StateID(i)) {
			if newID[t] != automata.NoState {
				b.AddEdge(newID[i], newID[t])
			}
		}
	}
	return b.MustBuild(), removed, newID
}
