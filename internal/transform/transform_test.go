package transform

import (
	"math/rand"
	"testing"

	"automatazoo/internal/automata"
	"automatazoo/internal/charset"
	"automatazoo/internal/regex"
	"automatazoo/internal/sim"
)

func compile(t *testing.T, patterns ...string) *automata.Automaton {
	t.Helper()
	b := automata.NewBuilder()
	for i, p := range patterns {
		parsed, err := regex.Parse(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := regex.CompileInto(b, parsed, int32(i)); err != nil {
			t.Fatal(err)
		}
	}
	return b.MustBuild()
}

// reportsOf returns the multiset of (offset, code) reports of a on input.
func reportsOf(a *automata.Automaton, input []byte) map[[2]int64]int {
	e := sim.New(a)
	out := map[[2]int64]int{}
	e.OnReport = func(r sim.Report) { out[[2]int64{r.Offset, int64(r.Code)}]++ }
	e.Run(input)
	return out
}

func sameReports(a, b map[[2]int64]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func TestPrefixMergeSharedPrefixes(t *testing.T) {
	// "hello" and "help" share "hel": 3 states of the second are mergeable.
	a := compile(t, "hello", "help")
	if a.NumStates() != 9 {
		t.Fatalf("states=%d", a.NumStates())
	}
	m, removed := PrefixMerge(a)
	if removed != 3 {
		t.Fatalf("removed=%d want 3", removed)
	}
	if m.NumStates() != 6 {
		t.Fatalf("merged states=%d want 6", m.NumStates())
	}
	input := []byte("say hello and help me")
	if !sameReports(reportsOf(a, input), reportsOf(m, input)) {
		t.Fatal("merge changed report behaviour")
	}
}

func TestPrefixMergeKeepsDistinctReports(t *testing.T) {
	// Identical patterns with different codes must NOT merge their
	// reporting tails.
	a := compile(t, "abc", "abc")
	m, _ := PrefixMerge(a)
	input := []byte("xabc")
	got := reportsOf(m, input)
	if len(got) != 2 {
		t.Fatalf("distinct-code reports lost: %v", got)
	}
	// But the non-reporting prefix (a, b) should merge: 6 → 4 states.
	if m.NumStates() != 4 {
		t.Fatalf("states=%d want 4", m.NumStates())
	}
}

func TestPrefixMergeIdempotent(t *testing.T) {
	a := compile(t, "cat", "car", "cart")
	m1, _ := PrefixMerge(a)
	m2, removed := PrefixMerge(m1)
	if removed != 0 {
		t.Fatalf("second merge removed %d", removed)
	}
	if m2.NumStates() != m1.NumStates() {
		t.Fatal("not idempotent")
	}
}

func TestPrefixMergePreservesCounters(t *testing.T) {
	b := automata.NewBuilder()
	s1 := b.AddSTE(charset.Single('x'), automata.StartAllInput)
	s2 := b.AddSTE(charset.Single('x'), automata.StartAllInput)
	c1 := b.AddCounter(2, automata.CountRollover)
	c2 := b.AddCounter(2, automata.CountRollover)
	b.AddEdge(s1, c1)
	b.AddEdge(s2, c2)
	b.SetReport(c1, 1)
	b.SetReport(c2, 2)
	a := b.MustBuild()
	m, _ := PrefixMerge(a)
	if m.NumCounters() != 2 {
		t.Fatalf("counters=%d want 2 (never merged)", m.NumCounters())
	}
	got := reportsOf(m, []byte("xx"))
	if len(got) != 2 {
		t.Fatalf("counter reports=%v", got)
	}
}

func TestPrefixMergeRandomizedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	words := []string{"cat", "car", "cart", "dog", "dig", "do", "a[bc]d", "ab+c"}
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(4)
		var pats []string
		for i := 0; i < n; i++ {
			pats = append(pats, words[rng.Intn(len(words))])
		}
		a := compile(t, pats...)
		m, _ := PrefixMerge(a)
		in := make([]byte, 40)
		alphabet := "abcdghiort "
		for i := range in {
			in[i] = alphabet[rng.Intn(len(alphabet))]
		}
		ra, rm := reportsOf(a, in), reportsOf(m, in)
		if !sameReports(ra, rm) {
			t.Fatalf("trial %d pats %v: reports differ\norig=%v\nmerged=%v", trial, pats, ra, rm)
		}
	}
}

func TestWiden(t *testing.T) {
	a := compile(t, "ab")
	w, err := Widen(a)
	if err != nil {
		t.Fatal(err)
	}
	if w.NumStates() != 2*a.NumStates() {
		t.Fatalf("widened states=%d want %d", w.NumStates(), 2*a.NumStates())
	}
	// Widened pattern matches a\0b\0 but not ab.
	got := reportsOf(w, []byte{'a', 0, 'b', 0})
	if len(got) != 1 || got[[2]int64{3, 0}] != 1 {
		t.Fatalf("widened reports=%v", got)
	}
	if n := len(reportsOf(w, []byte("ab"))); n != 0 {
		t.Fatalf("narrow input matched widened automaton: %d", n)
	}
}

func TestWidenClassPattern(t *testing.T) {
	a := compile(t, "[0-9]z")
	w, err := Widen(a)
	if err != nil {
		t.Fatal(err)
	}
	got := reportsOf(w, []byte{'7', 0, 'z', 0})
	if len(got) != 1 {
		t.Fatalf("reports=%v", got)
	}
}

func TestWidenRejectsCounters(t *testing.T) {
	b := automata.NewBuilder()
	s := b.AddSTE(charset.Single('x'), automata.StartAllInput)
	c := b.AddCounter(2, automata.CountRollover)
	b.AddEdge(s, c)
	b.SetReport(c, 0)
	a := b.MustBuild()
	if _, err := Widen(a); err == nil {
		t.Fatal("expected error widening counters")
	}
}

func TestTrim(t *testing.T) {
	b := automata.NewBuilder()
	s := b.AddSTE(charset.Single('a'), automata.StartAllInput)
	r := b.AddSTE(charset.Single('b'), automata.StartNone)
	b.AddEdge(s, r)
	b.SetReport(r, 0)
	// Unreachable island.
	d1 := b.AddSTE(charset.Single('x'), automata.StartNone)
	d2 := b.AddSTE(charset.Single('y'), automata.StartNone)
	b.AddEdge(d1, d2)
	a := b.MustBuild()
	tr, removed := Trim(a)
	if removed != 2 {
		t.Fatalf("removed=%d", removed)
	}
	if tr.NumStates() != 2 {
		t.Fatalf("states=%d", tr.NumStates())
	}
	if !sameReports(reportsOf(a, []byte("ab")), reportsOf(tr, []byte("ab"))) {
		t.Fatal("trim changed behaviour")
	}
}

func TestTrimNoop(t *testing.T) {
	a := compile(t, "abc")
	tr, removed := Trim(a)
	if removed != 0 || tr.NumStates() != a.NumStates() {
		t.Fatalf("removed=%d states=%d", removed, tr.NumStates())
	}
}
