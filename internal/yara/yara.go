// Package yara implements the malware-pattern-search benchmarks. YARA
// rules describe malware with hexadecimal strings carrying nibble-level
// (4-bit) wildcards, bounded and unbounded jumps, and alternation groups,
// plus plain text strings and regexes. Nibble-level patterns are below
// the granularity regex engines accept, so — exactly as the paper's
// pipeline (Plyara → hex-to-regex conversion → pcre2mnrl) — this package
// parses rule text, rewrites hex tokens into byte-level character
// classes, and compiles everything to automata. The "wide" variant
// (16-bit symbols, zero high bytes) is produced by the suite's widening
// transformation.
package yara

import (
	"fmt"
	"strconv"
	"strings"

	"automatazoo/internal/automata"
	"automatazoo/internal/randx"
	"automatazoo/internal/regex"
	"automatazoo/internal/transform"
)

// StringKind distinguishes the three YARA string forms.
type StringKind int

const (
	// KindText is a quoted literal.
	KindText StringKind = iota
	// KindHex is a { ... } hex string.
	KindHex
	// KindRegex is a /.../ pattern.
	KindRegex
)

// String is one $-string of a rule.
type String struct {
	Name  string
	Kind  StringKind
	Value string // literal text, hex body, or regex pattern
	Wide  bool   // the `wide` modifier
}

// Rule is one YARA rule.
type Rule struct {
	Name    string
	Strings []String
}

// ParseRules parses a stream of rule blocks in the subset this package
// emits:
//
//	rule Name {
//	  strings:
//	    $a = "text" wide
//	    $b = { 9C 50 ?? (?A | 66) [4-12] 58 }
//	    $c = /regex/
//	  condition: any of them
//	}
func ParseRules(src string) ([]Rule, error) {
	var rules []Rule
	rest := src
	for {
		i := strings.Index(rest, "rule ")
		if i < 0 {
			break
		}
		rest = rest[i+5:]
		brace := strings.IndexByte(rest, '{')
		if brace < 0 {
			return nil, fmt.Errorf("yara: rule without body")
		}
		name := strings.TrimSpace(rest[:brace])
		end, err := matchBrace(rest, brace)
		if err != nil {
			return nil, fmt.Errorf("yara: rule %s: %v", name, err)
		}
		body := rest[brace+1 : end]
		rest = rest[end+1:]
		r := Rule{Name: name}
		if err := parseStrings(body, &r); err != nil {
			return nil, fmt.Errorf("yara: rule %s: %v", name, err)
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("yara: no rules found")
	}
	return rules, nil
}

// matchBrace finds the closing brace matching src[open], skipping quoted
// strings.
func matchBrace(src string, open int) (int, error) {
	depth := 0
	inQuote := false
	for i := open; i < len(src); i++ {
		switch src[i] {
		case '"':
			if i == 0 || src[i-1] != '\\' {
				inQuote = !inQuote
			}
		case '{':
			if !inQuote {
				depth++
			}
		case '}':
			if !inQuote {
				depth--
				if depth == 0 {
					return i, nil
				}
			}
		}
	}
	return 0, fmt.Errorf("unbalanced braces")
}

func parseStrings(body string, r *Rule) error {
	idx := strings.Index(body, "strings:")
	if idx < 0 {
		return fmt.Errorf("no strings section")
	}
	sec := body[idx+len("strings:"):]
	if c := strings.Index(sec, "condition:"); c >= 0 {
		sec = sec[:c]
	}
	for _, line := range strings.Split(sec, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || !strings.HasPrefix(line, "$") {
			continue
		}
		name, val, ok := strings.Cut(line, "=")
		if !ok {
			return fmt.Errorf("bad string line %q", line)
		}
		s := String{Name: strings.TrimSpace(name)}
		val = strings.TrimSpace(val)
		if strings.HasSuffix(val, " wide") {
			s.Wide = true
			val = strings.TrimSuffix(val, " wide")
			val = strings.TrimSpace(val)
		}
		switch {
		case strings.HasPrefix(val, `"`) && strings.HasSuffix(val, `"`):
			s.Kind = KindText
			s.Value = val[1 : len(val)-1]
		case strings.HasPrefix(val, "{") && strings.HasSuffix(val, "}"):
			s.Kind = KindHex
			s.Value = strings.TrimSpace(val[1 : len(val)-1])
		case strings.HasPrefix(val, "/") && strings.HasSuffix(val, "/"):
			s.Kind = KindRegex
			s.Value = val[1 : len(val)-1]
		default:
			return fmt.Errorf("unrecognized string form %q", val)
		}
		r.Strings = append(r.Strings, s)
	}
	if len(r.Strings) == 0 {
		return fmt.Errorf("rule has no strings")
	}
	return nil
}

// HexToRegex rewrites a YARA hex-string body into the suite's regex
// subset. Tokens: hex pairs, nibble wildcards (?? / ?X / X?), jumps
// [n-m] / [n] / [-], and alternation groups ( a | b ).
func HexToRegex(hex string) (string, error) {
	var sb strings.Builder
	toks := strings.Fields(strings.NewReplacer("(", " ( ", ")", " ) ", "|", " | ").Replace(hex))
	for _, tok := range toks {
		switch {
		case tok == "(" || tok == ")" || tok == "|":
			sb.WriteString(tok)
		case strings.HasPrefix(tok, "["):
			if !strings.HasSuffix(tok, "]") {
				return "", fmt.Errorf("yara: bad jump %q", tok)
			}
			spec := tok[1 : len(tok)-1]
			if spec == "-" {
				sb.WriteString(".*")
				break
			}
			lo, hi, err := parseJump(spec)
			if err != nil {
				return "", err
			}
			if hi < 0 {
				fmt.Fprintf(&sb, ".{%d,}", lo)
			} else {
				fmt.Fprintf(&sb, ".{%d,%d}", lo, hi)
			}
		case len(tok) == 2:
			cls, err := nibblePair(tok[0], tok[1])
			if err != nil {
				return "", err
			}
			sb.WriteString(cls)
		default:
			return "", fmt.Errorf("yara: bad hex token %q", tok)
		}
	}
	return sb.String(), nil
}

func parseJump(spec string) (lo, hi int, err error) {
	if !strings.Contains(spec, "-") {
		v, err := strconv.Atoi(spec)
		if err != nil {
			return 0, 0, fmt.Errorf("yara: bad jump [%s]", spec)
		}
		return v, v, nil
	}
	a, b, _ := strings.Cut(spec, "-")
	lo, hi = 0, -1
	if a != "" {
		if lo, err = strconv.Atoi(a); err != nil {
			return 0, 0, fmt.Errorf("yara: bad jump [%s]", spec)
		}
	}
	if b != "" {
		if hi, err = strconv.Atoi(b); err != nil {
			return 0, 0, fmt.Errorf("yara: bad jump [%s]", spec)
		}
		if lo > hi {
			return 0, 0, fmt.Errorf("yara: inverted jump [%s]", spec)
		}
	}
	return lo, hi, nil
}

func nibbleVal(c byte) (int, bool) {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0'), true
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10, true
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10, true
	}
	return 0, false
}

// nibblePair renders one hex pair (possibly with nibble wildcards) as a
// regex atom.
func nibblePair(hi, lo byte) (string, error) {
	hv, hok := nibbleVal(hi)
	lv, lok := nibbleVal(lo)
	switch {
	case hi == '?' && lo == '?':
		return ".", nil
	case hi == '?' && lok:
		var sb strings.Builder
		sb.WriteByte('[')
		for h := 0; h < 16; h++ {
			fmt.Fprintf(&sb, "\\x%02x", h<<4|lv)
		}
		sb.WriteByte(']')
		return sb.String(), nil
	case hok && lo == '?':
		return fmt.Sprintf("[\\x%02x-\\x%02x]", hv<<4, hv<<4|0x0f), nil
	case hok && lok:
		return fmt.Sprintf("\\x%02x", hv<<4|lv), nil
	}
	return "", fmt.Errorf("yara: bad hex pair %c%c", hi, lo)
}

// stringPattern converts one YARA string to the regex subset.
func stringPattern(s String) (string, regex.Flags, error) {
	switch s.Kind {
	case KindText:
		var sb strings.Builder
		for i := 0; i < len(s.Value); i++ {
			c := s.Value[i]
			if strings.IndexByte(`.*+?()[]{}|\^$/`, c) >= 0 {
				sb.WriteByte('\\')
			}
			sb.WriteByte(c)
		}
		return sb.String(), 0, nil
	case KindHex:
		p, err := HexToRegex(s.Value)
		return p, regex.DotAll, err
	case KindRegex:
		return s.Value, regex.DotAll, nil
	}
	return "", 0, fmt.Errorf("yara: unknown string kind")
}

// Compile builds the benchmark automaton from rules; every string of rule
// i reports with code i. Wide strings are compiled standalone, widened
// with the suite transformation, and merged. Unsupported strings are
// skipped and counted.
func Compile(rules []Rule) (*automata.Automaton, int, error) {
	return CompileTagged(rules, nil)
}

// CompileTagged is Compile additionally reporting each rule's builder
// state ranges to tag (when non-nil) — one call per successfully compiled
// string, all under the rule's name, covering the widened form for wide
// strings — so a cost-attribution provenance map (internal/attr) can name
// states by rule.
func CompileTagged(rules []Rule, tag func(name string, lo, hi int)) (*automata.Automaton, int, error) {
	b := automata.NewBuilder()
	skipped := 0
	for i, r := range rules {
		for _, s := range r.Strings {
			lo := b.NumStates()
			pat, flags, err := stringPattern(s)
			if err != nil {
				skipped++
				continue
			}
			parsed, err := regex.Parse(pat, flags)
			if err != nil {
				skipped++
				continue
			}
			if !s.Wide {
				if _, err := regex.CompileInto(b, parsed, int32(i)); err != nil {
					skipped++
				} else if tag != nil {
					tag(r.Name, lo, b.NumStates())
				}
				continue
			}
			sb := automata.NewBuilder()
			if _, err := regex.CompileInto(sb, parsed, int32(i)); err != nil {
				skipped++
				continue
			}
			narrow, err := sb.Build()
			if err != nil {
				skipped++
				continue
			}
			wideA, err := transform.Widen(narrow)
			if err != nil {
				skipped++
				continue
			}
			b.Merge(wideA, 0)
			if tag != nil {
				tag(r.Name, lo, b.NumStates())
			}
		}
	}
	a, err := b.Build()
	return a, skipped, err
}

// GenConfig sizes the generated ruleset.
type GenConfig struct {
	Rules    int
	WideFrac float64 // fraction of rules whose strings carry `wide`
}

// Generate synthesizes a ruleset: hex strings with nibble wildcards,
// jumps, and alternations (the dominant population), plus text strings
// and simple regexes.
func Generate(cfg GenConfig, seed uint64) []Rule {
	rng := randx.New(seed)
	rules := make([]Rule, cfg.Rules)
	const hexd = "0123456789ABCDEF"
	emit := func(sb *strings.Builder, k int) {
		for i := 0; i < k; i++ {
			if sb.Len() > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteByte(hexd[rng.Intn(16)])
			sb.WriteByte(hexd[rng.Intn(16)])
		}
	}
	for i := range rules {
		wide := rng.Float64() < cfg.WideFrac
		var strs []String
		switch rng.Intn(5) {
		case 0: // text string
			w := make([]byte, 24+rng.Intn(30))
			for j := range w {
				w[j] = byte('a' + rng.Intn(26))
			}
			strs = append(strs, String{Name: "$t", Kind: KindText, Value: string(w), Wide: wide})
		case 1: // regex string
			strs = append(strs, String{Name: "$r", Kind: KindRegex,
				Value: fmt.Sprintf("\\x%02x\\x%02x[\\x40-\\x5f]{2,6}\\x%02x[\\x20-\\x7e]{4,12}\\x%02x\\x%02x",
					rng.Intn(256), rng.Intn(256), rng.Intn(256), rng.Intn(256), rng.Intn(256)), Wide: wide})
		default: // hex string with wildcards / jumps / alternation
			var sb strings.Builder
			emit(&sb, 18+rng.Intn(16))
			switch rng.Intn(4) {
			case 0:
				sb.WriteString(" ?")
				sb.WriteByte(hexd[rng.Intn(16)])
				emit(&sb, 16+rng.Intn(12))
			case 1:
				fmt.Fprintf(&sb, " [%d-%d]", 2+rng.Intn(4), 8+rng.Intn(8))
				emit(&sb, 16+rng.Intn(12))
			case 2:
				sb.WriteString(" ( ")
				sb.WriteByte(hexd[rng.Intn(16)])
				sb.WriteByte(hexd[rng.Intn(16)])
				sb.WriteString(" | ")
				sb.WriteByte(hexd[rng.Intn(16)])
				sb.WriteByte(hexd[rng.Intn(16)])
				sb.WriteString(" ) ")
				emit(&sb, 14+rng.Intn(12))
			default:
				sb.WriteString(" ??")
				emit(&sb, 18+rng.Intn(12))
			}
			strs = append(strs, String{Name: "$h", Kind: KindHex, Value: sb.String(), Wide: wide})
		}
		rules[i] = Rule{Name: fmt.Sprintf("synth_mal_%d", i), Strings: strs}
	}
	return rules
}

// Format renders rules back to YARA source (round-trippable through
// ParseRules).
func Format(rules []Rule) string {
	var sb strings.Builder
	for _, r := range rules {
		fmt.Fprintf(&sb, "rule %s {\n  strings:\n", r.Name)
		for _, s := range r.Strings {
			fmt.Fprintf(&sb, "    %s = ", s.Name)
			switch s.Kind {
			case KindText:
				fmt.Fprintf(&sb, "%q", s.Value)
			case KindHex:
				fmt.Fprintf(&sb, "{ %s }", s.Value)
			case KindRegex:
				fmt.Fprintf(&sb, "/%s/", s.Value)
			}
			if s.Wide {
				sb.WriteString(" wide")
			}
			sb.WriteByte('\n')
		}
		sb.WriteString("  condition: any of them\n}\n")
	}
	return sb.String()
}

// MalwareBody materializes bytes matching a rule's first string (minimal
// jumps, zeros for wildcards, first alternatives), widened if the string
// is wide.
func MalwareBody(r Rule) ([]byte, error) {
	if len(r.Strings) == 0 {
		return nil, fmt.Errorf("yara: rule has no strings")
	}
	s := r.Strings[0]
	var body []byte
	switch s.Kind {
	case KindText:
		body = []byte(s.Value)
	case KindHex:
		toks := strings.Fields(strings.NewReplacer("(", " ( ", ")", " ) ", "|", " | ").Replace(s.Value))
		depth := 0
		for _, tok := range toks {
			switch {
			case tok == "(":
				depth++
			case tok == ")":
				if depth > 0 {
					depth--
				}
			case tok == "|":
				// skip remaining alternatives: consume until group close
				depth = -depth // mark skipping
			case strings.HasPrefix(tok, "["):
				spec := strings.Trim(tok, "[]")
				if spec == "-" {
					continue
				}
				lo, _, err := parseJump(spec)
				if err != nil {
					return nil, err
				}
				for k := 0; k < lo; k++ {
					body = append(body, 0)
				}
			case len(tok) == 2 && depth >= 0:
				hv, _ := nibbleVal(tok[0])
				lv, _ := nibbleVal(tok[1])
				if tok[0] == '?' {
					hv = 0
				}
				if tok[1] == '?' {
					lv = 0
				}
				body = append(body, byte(hv<<4|lv))
			}
			if depth < 0 && tok == ")" {
				depth = 0
			}
		}
	case KindRegex:
		return nil, fmt.Errorf("yara: cannot materialize regex string")
	}
	if s.Wide {
		wide := make([]byte, 0, 2*len(body))
		for _, c := range body {
			wide = append(wide, c, 0)
		}
		body = wide
	}
	return body, nil
}

// Corpus synthesizes a malware-scan input of n bytes with the bodies of
// the given rules embedded.
func Corpus(n int, embed []Rule, seed uint64) ([]byte, error) {
	rng := randx.New(seed ^ 0x9a7a)
	out := rng.Bytes(n)
	for _, r := range embed {
		body, err := MalwareBody(r)
		if err != nil {
			continue // regex strings can't be materialized; skip
		}
		if len(body) >= n {
			continue
		}
		pos := rng.Intn(n - len(body))
		copy(out[pos:], body)
	}
	return out, nil
}
