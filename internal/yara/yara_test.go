package yara

import (
	"strings"
	"testing"

	"automatazoo/internal/sim"
)

const sampleRules = `
rule ExampleHex {
  strings:
    $a = { 9C 50 A1 ?? ( ?A | 66 ) 58 }
  condition: any of them
}
rule ExampleText {
  strings:
    $t = "malicious payload"
  condition: any of them
}
rule ExampleWide {
  strings:
    $w = "evil" wide
  condition: any of them
}
`

func TestParseRules(t *testing.T) {
	rules, err := ParseRules(sampleRules)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 3 {
		t.Fatalf("rules=%d", len(rules))
	}
	if rules[0].Name != "ExampleHex" || rules[0].Strings[0].Kind != KindHex {
		t.Fatalf("rule0=%+v", rules[0])
	}
	if rules[1].Strings[0].Kind != KindText || rules[1].Strings[0].Value != "malicious payload" {
		t.Fatalf("rule1=%+v", rules[1])
	}
	if !rules[2].Strings[0].Wide {
		t.Fatal("wide modifier lost")
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"rule X { condition: true }", // no strings
		"rule Y { strings: $a = ??? \n condition:", // unbalanced
	} {
		if _, err := ParseRules(bad); err == nil {
			t.Errorf("ParseRules(%q) should fail", bad)
		}
	}
}

func TestHexToRegex(t *testing.T) {
	cases := []struct{ in, want string }{
		{"9C 50", `\x9c\x50`},
		{"9C ?? 50", `\x9c.\x50`},
		{"9C [2-4] 50", `\x9c.{2,4}\x50`},
		{"9C [3] 50", `\x9c.{3,3}\x50`},
		{"9C [-] 50", `\x9c.*\x50`},
		{"( 41 | 42 ) 43", `(\x41|\x42)\x43`},
		{"5?", `[\x50-\x5f]`},
	}
	for _, c := range cases {
		got, err := HexToRegex(c.in)
		if err != nil {
			t.Errorf("HexToRegex(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("HexToRegex(%q)=%q want %q", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"9", "9C [x] 50", "9C [5-2] 50", "ZZ"} {
		if _, err := HexToRegex(bad); err == nil {
			t.Errorf("HexToRegex(%q) should fail", bad)
		}
	}
}

func TestPaperExamplePattern(t *testing.T) {
	// The paper's example: 9C 50 A1 ?? (?A ?? 00 | 66 A9 D?) ?? 58 0F 85.
	rules, err := ParseRules(`rule Paper {
  strings:
    $x = { 9C 50 A1 ?? ( ?A ?? 00 | 66 A9 D? ) ?? 58 0F 85 }
  condition: any of them
}`)
	if err != nil {
		t.Fatal(err)
	}
	a, skipped, err := Compile(rules)
	if err != nil || skipped != 0 {
		t.Fatalf("compile: %v skipped=%d", err, skipped)
	}
	e := sim.New(a)
	// First alternative: ?A=0x3A, ??=0x11, 00.
	hit := []byte{0x9C, 0x50, 0xA1, 0x77, 0x3A, 0x11, 0x00, 0x99, 0x58, 0x0F, 0x85}
	if got := e.CountReports(hit); got != 1 {
		t.Fatalf("alt1 reports=%d", got)
	}
	// Second alternative: 66 A9 D?=0xD5.
	hit2 := []byte{0x9C, 0x50, 0xA1, 0x77, 0x66, 0xA9, 0xD5, 0x99, 0x58, 0x0F, 0x85}
	if got := e.CountReports(hit2); got != 1 {
		t.Fatalf("alt2 reports=%d", got)
	}
	// Nibble mismatch: ?A needs low nibble A.
	miss := []byte{0x9C, 0x50, 0xA1, 0x77, 0x3B, 0x11, 0x00, 0x99, 0x58, 0x0F, 0x85}
	if got := e.CountReports(miss); got != 0 {
		t.Fatalf("nibble miss matched: %d", got)
	}
}

func TestWideCompilation(t *testing.T) {
	rules, err := ParseRules(`rule W {
  strings:
    $w = "hi" wide
  condition: any of them
}`)
	if err != nil {
		t.Fatal(err)
	}
	a, skipped, err := Compile(rules)
	if err != nil || skipped != 0 {
		t.Fatalf("compile: %v skipped=%d", err, skipped)
	}
	e := sim.New(a)
	if got := e.CountReports([]byte{'h', 0, 'i', 0}); got != 1 {
		t.Fatalf("wide form not matched: %d", got)
	}
	if got := e.CountReports([]byte("hi")); got != 0 {
		t.Fatalf("narrow input matched wide rule: %d", got)
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	rules := Generate(GenConfig{Rules: 40, WideFrac: 0.25}, 3)
	src := Format(rules)
	back, err := ParseRules(src)
	if err != nil {
		t.Fatalf("reparse: %v\nsource:\n%s", err, src)
	}
	if len(back) != len(rules) {
		t.Fatalf("round trip count %d != %d", len(back), len(rules))
	}
	for i := range rules {
		if back[i].Name != rules[i].Name ||
			back[i].Strings[0].Kind != rules[i].Strings[0].Kind ||
			back[i].Strings[0].Wide != rules[i].Strings[0].Wide {
			t.Fatalf("rule %d mismatch:\n in=%+v\nout=%+v", i, rules[i], back[i])
		}
	}
}

func TestGeneratedRulesCompile(t *testing.T) {
	rules := Generate(GenConfig{Rules: 150, WideFrac: 0.2}, 7)
	a, skipped, err := Compile(rules)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("skipped=%d", skipped)
	}
	sizes, _ := a.Components()
	if len(sizes) != 150 {
		t.Fatalf("subgraphs=%d", len(sizes))
	}
	mean := float64(a.NumStates()) / 150
	if mean < 15 || mean > 90 {
		t.Fatalf("mean rule size %.1f outside Table-I ballpark (~44)", mean)
	}
}

func TestCorpusDetection(t *testing.T) {
	rules := Generate(GenConfig{Rules: 60, WideFrac: 0}, 9)
	// Pick hex/text rules to embed (regex strings can't be materialized).
	var embed []Rule
	var embedIdx []int32
	for i, r := range rules {
		if r.Strings[0].Kind != KindRegex && len(embed) < 4 {
			embed = append(embed, r)
			embedIdx = append(embedIdx, int32(i))
		}
	}
	corpus, err := Corpus(1<<17, embed, 11)
	if err != nil {
		t.Fatal(err)
	}
	a, _, err := Compile(rules)
	if err != nil {
		t.Fatal(err)
	}
	e := sim.New(a)
	found := map[int32]bool{}
	e.OnReport = func(r sim.Report) { found[r.Code] = true }
	e.Run(corpus)
	for _, idx := range embedIdx {
		if !found[idx] {
			t.Errorf("embedded rule %d not detected", idx)
		}
	}
}

func TestMalwareBodyMatchesOwnRule(t *testing.T) {
	rules := Generate(GenConfig{Rules: 40, WideFrac: 0.3}, 13)
	for i, r := range rules {
		if r.Strings[0].Kind == KindRegex {
			continue
		}
		body, err := MalwareBody(r)
		if err != nil {
			t.Fatalf("rule %d: %v", i, err)
		}
		a, skipped, err := Compile([]Rule{r})
		if err != nil || skipped != 0 {
			t.Fatalf("rule %d compile: %v skipped=%d", i, err, skipped)
		}
		e := sim.New(a)
		if e.CountReports(body) == 0 {
			t.Fatalf("rule %d (%s) does not match its own body %x",
				i, strings.TrimSpace(Format([]Rule{r})), body)
		}
	}
}
