package automatazoo_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// Library code must return errors, never kill the process: log.Fatal*,
// log.Panic*, and os.Exit are reserved for the binaries under cmd/ and
// examples/. This is the enforcement half of the resilience contract —
// the run governor can only guarantee "every fault surfaces as a
// structured error" if no internal package can bypass error propagation
// by exiting. (Test files are exempt: testing's own FailNow machinery is
// the right tool there.)
func TestNoProcessExitInLibraryCode(t *testing.T) {
	fset := token.NewFileSet()
	var violations []string
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "cmd" || name == "examples" || name == "testdata" || strings.HasPrefix(name, ".") && name != "." {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return err
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			fn := sel.Sel.Name
			banned := (pkg.Name == "log" && (strings.HasPrefix(fn, "Fatal") || strings.HasPrefix(fn, "Panic"))) ||
				(pkg.Name == "os" && fn == "Exit")
			if banned {
				violations = append(violations,
					fset.Position(call.Pos()).String()+": "+pkg.Name+"."+fn)
			}
			return true
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range violations {
		t.Errorf("library code calls a process-killing function: %s", v)
	}
}

// The telemetry package reads wall-clock time only through the clock seam
// in clock.go (nowNanos): spans, progress trackers, and the stall
// watchdog all take injectable clocks, which is what makes their tests
// deterministic. A stray time.Now anywhere else in the package would
// silently bypass the injected clock, so it is banned here. (time.Ticker
// and time.Duration remain fine — only the *reading* of the clock is
// seamed.)
func TestNoDirectTimeNowInTelemetry(t *testing.T) {
	fset := token.NewFileSet()
	var violations []string
	err := filepath.WalkDir("internal/telemetry", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") ||
			filepath.Base(path) == "clock.go" {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return err
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			if pkg.Name == "time" && sel.Sel.Name == "Now" {
				violations = append(violations,
					fset.Position(call.Pos()).String()+": time.Now")
			}
			return true
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range violations {
		t.Errorf("telemetry reads the clock outside the clock.go seam: %s", v)
	}
}

// bannedFileOps scans parsed files for direct file mutations that bypass
// the internal/atomicio crash-safety helper: os.Rename always, and the
// whole-file write constructors (os.Create / os.WriteFile / os.OpenFile)
// when writes is true. Shared by TestAtomicArtifactWrites and its canary.
func bannedFileOps(fset *token.FileSet, f *ast.File, writes bool) []string {
	var violations []string
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || pkg.Name != "os" {
			return true
		}
		fn := sel.Sel.Name
		if fn == "Rename" || (writes && (fn == "Create" || fn == "WriteFile" || fn == "OpenFile")) {
			violations = append(violations, fset.Position(call.Pos()).String()+": os."+fn)
		}
		return true
	})
	return violations
}

// Run artifacts — checkpoints, report manifests, postmortems, metrics
// snapshots — must be written through internal/atomicio (write-temp +
// fsync + rename), so a crash can never leave a torn-but-parseable file.
// Enforcement: os.Rename is banned everywhere outside internal/atomicio
// (a raw rename is exactly the non-durable half of the atomic pattern),
// and the artifact-writing packages (internal/report, internal/ckpt) may
// not open files for writing at all. Streaming writers — the NDJSON
// trace in cmd/azoo, the mnrl/dot export streams — are exempt by scope:
// they write incrementally by design and are not recovery inputs.
func TestAtomicArtifactWrites(t *testing.T) {
	// Canary: the detector must actually catch both op classes, or the
	// walk below proves nothing.
	fset := token.NewFileSet()
	canary, err := parser.ParseFile(fset, "canary.go", `package canary
import "os"
func bad() {
	os.Rename("a", "b")
	os.Create("c")
	os.WriteFile("d", nil, 0o600)
}`, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := bannedFileOps(fset, canary, true); len(got) != 3 {
		t.Fatalf("canary: detector found %d of 3 planted violations: %v", len(got), got)
	}
	if got := bannedFileOps(fset, canary, false); len(got) != 1 {
		t.Fatalf("canary: rename-only detector found %d of 1 planted violations: %v", len(got), got)
	}

	writePackages := map[string]bool{
		"internal/report": true,
		"internal/ckpt":   true,
	}
	var violations []string
	err = filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || name == "examples" || path == "internal/atomicio" ||
				strings.HasPrefix(name, ".") && name != "." {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return err
		}
		violations = append(violations, bannedFileOps(fset, f, writePackages[filepath.Dir(path)])...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range violations {
		t.Errorf("raw file mutation outside internal/atomicio (route it through the atomic-write helper): %s", v)
	}
}

// The attr package's determinism contract (see its package comment) is
// that every output path — Fold, WriteText, Publish, provenance labels —
// iterates slices in index order, never Go maps, whose iteration order is
// randomized. Maps in attr are lookup tables only (byName, codeOwner):
// this lint bans `range` over any map-typed name in the package, so a
// future change cannot quietly reintroduce schedule-dependent output.
// The check is syntactic: it collects every name declared with a map
// type (struct fields, var decls, make/literal assignments) and flags
// range statements over those names or over inline map expressions.
func TestNoMapIterationInAttr(t *testing.T) {
	fset := token.NewFileSet()
	mapNames := map[string]bool{}
	var files []*ast.File
	err := filepath.WalkDir("internal/attr", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return err
		}
		files = append(files, f)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	isMakeMap := func(e ast.Expr) bool {
		if _, ok := e.(*ast.MapType); ok {
			return true
		}
		if lit, ok := e.(*ast.CompositeLit); ok {
			_, isMap := lit.Type.(*ast.MapType)
			return isMap
		}
		if call, ok := e.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "make" && len(call.Args) > 0 {
				_, isMap := call.Args[0].(*ast.MapType)
				return isMap
			}
		}
		return false
	}
	// Pass 1: collect every name that is declared or assigned a map type.
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.Field:
				if _, ok := v.Type.(*ast.MapType); ok {
					for _, name := range v.Names {
						mapNames[name.Name] = true
					}
				}
			case *ast.ValueSpec:
				if _, ok := v.Type.(*ast.MapType); ok {
					for _, name := range v.Names {
						mapNames[name.Name] = true
					}
				}
			case *ast.AssignStmt:
				for i, rhs := range v.Rhs {
					if i < len(v.Lhs) && isMakeMap(rhs) {
						if id, ok := v.Lhs[i].(*ast.Ident); ok {
							mapNames[id.Name] = true
						}
					}
				}
			}
			return true
		})
	}
	// Pass 2: flag range statements over map-typed names or expressions.
	var violations []string
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			bad := isMakeMap(rng.X)
			switch x := rng.X.(type) {
			case *ast.Ident:
				bad = bad || mapNames[x.Name]
			case *ast.SelectorExpr:
				bad = bad || mapNames[x.Sel.Name]
			}
			if bad {
				violations = append(violations,
					fset.Position(rng.Pos()).String())
			}
			return true
		})
	}
	for _, v := range violations {
		t.Errorf("attr ranges over a map (iteration order is randomized — output paths must iterate slices): %s", v)
	}
}
