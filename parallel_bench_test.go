// Sequential-vs-parallel throughput of the worker-pool execution layer.
// `make bench-parallel` runs these; the j=1 / j=N ratio is the speedup.
package automatazoo_test

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"automatazoo/internal/mesh"
	"automatazoo/internal/partition"
	"automatazoo/internal/randx"
	"automatazoo/internal/stats"
)

// benchWorkers is the j values benchmarked: sequential, and the pool at
// full width (at least 2 so single-CPU machines still cover the fan-out
// path).
func benchWorkers() []int {
	n := runtime.NumCPU()
	if n < 2 {
		n = 2
	}
	return []int{1, n}
}

// BenchmarkParallelPlanRun measures partition.Plan.Run on a wide mesh
// kernel: one whole-automaton slice at j=1 versus component slices
// fanned across the pool at j=NumCPU.
func BenchmarkParallelPlanRun(b *testing.B) {
	a, err := mesh.Benchmark(mesh.Hamming, 64, 12, 3, 41)
	if err != nil {
		b.Fatal(err)
	}
	input := mesh.RandomDNA(randx.New(5), 1<<17)
	for _, workers := range benchWorkers() {
		workers := workers
		b.Run(fmt.Sprintf("j=%d", workers), func(b *testing.B) {
			plan := partition.ForWorkers(a, workers)
			b.SetBytes(int64(len(input)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := plan.Run(context.Background(), input, partition.RunOptions{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelObserveSegments measures the harness-level path
// cmdRun uses: the single-engine dynamic profile at j=1 versus the
// partitioned parallel profile at j=NumCPU.
func BenchmarkParallelObserveSegments(b *testing.B) {
	a, err := mesh.Benchmark(mesh.Levenshtein, 24, 14, 3, 17)
	if err != nil {
		b.Fatal(err)
	}
	rng := randx.New(11)
	segs := [][]byte{mesh.RandomDNA(rng, 1<<16), mesh.RandomDNA(rng, 1<<16)}
	var total int64
	for _, seg := range segs {
		total += int64(len(seg))
	}
	for _, workers := range benchWorkers() {
		workers := workers
		b.Run(fmt.Sprintf("j=%d", workers), func(b *testing.B) {
			b.SetBytes(total)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if workers == 1 {
					stats.ObserveSegments(a, segs, nil, nil)
					continue
				}
				if _, err := stats.ObserveSegmentsParallel(context.Background(), a, segs, workers, nil, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
