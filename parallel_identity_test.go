// Suite-wide `-j 1` ≡ `-j N` guarantee: for every benchmark and both
// engines, the output lines `azoo run` prints must be byte-identical at
// every worker count. The format strings and per-engine accounting below
// mirror cmdRun in cmd/azoo/main.go exactly — if that output changes,
// this test must change with it.
package automatazoo_test

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"automatazoo/internal/automata"
	"automatazoo/internal/core"
	"automatazoo/internal/dfa"
	"automatazoo/internal/parallel"
	"automatazoo/internal/partition"
	"automatazoo/internal/stats"
)

func TestRunOutputByteIdenticalAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("generates and scans the full suite at two worker counts")
	}
	cfg := core.Config{Scale: 0.01, InputBytes: 30_000, Seed: 0xe1}
	workers := runtime.NumCPU()
	if workers < 2 {
		workers = 2
	}
	for _, bench := range core.All() {
		bench := bench
		t.Run(bench.Name, func(t *testing.T) {
			a, segs, err := bench.Build(cfg)
			if err != nil {
				t.Fatalf("Build: %v", err)
			}

			seq := stats.ObserveSegments(a, segs, nil, nil)
			par, err := stats.ObserveSegmentsParallel(context.Background(), a, segs, workers, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			if s, p := nfaLine(bench.Name, a, seq), nfaLine(bench.Name, a, par); s != p {
				t.Errorf("nfa output differs:\n -j 1: %q\n -j %d: %q", s, workers, p)
			}

			// The dfa engine rejects counter automata at any -j, exactly
			// as Hyperscan skips such rules.
			if a.NumCounters() > 0 {
				return
			}
			s, err := dfaLines(bench.Name, a, segs, 1)
			if err != nil {
				t.Fatal(err)
			}
			p, err := dfaLines(bench.Name, a, segs, workers)
			if err != nil {
				t.Fatal(err)
			}
			if s != p {
				t.Errorf("dfa output differs:\n -j 1: %q\n -j %d: %q", s, workers, p)
			}
		})
	}
}

// nfaLine formats cmdRun's nfa-engine output line.
func nfaLine(name string, a *automata.Automaton, dyn stats.Dynamic) string {
	return fmt.Sprintf("%s: %d states, %d symbols, %d reports (%.6f/sym), active set %.2f\n",
		name, a.NumStates(), dyn.Symbols, dyn.Reports, dyn.ReportRate, dyn.ActiveSet)
}

// dfaLines formats cmdRun's dfa-engine output lines, reproducing both
// its -j 1 path (one whole-automaton engine) and its -j N path
// (component-partitioned slice engines on the worker pool, statistics
// summed).
func dfaLines(name string, a *automata.Automaton, segs [][]byte, workers int) (string, error) {
	var symbols, reports int64
	var st dfa.Stats
	if workers == 1 {
		e, err := dfa.New(a)
		if err != nil {
			return "", err
		}
		for _, seg := range segs {
			e.Reset()
			s := e.Run(seg)
			symbols += s.Symbols
			reports += s.Reports
		}
		st = e.Stats()
	} else {
		plan := partition.ForWorkers(a, workers)
		perSlice := make([]dfa.Stats, plan.Passes())
		sliceReports := make([]int64, plan.Passes())
		err := parallel.ForEach(context.Background(), workers, plan.Passes(), func(i int) error {
			sub, err := plan.Extract(i)
			if err != nil {
				return err
			}
			e, err := dfa.New(sub)
			if err != nil {
				return err
			}
			for _, seg := range segs {
				e.Reset() // clears per-run Symbols/Reports; cache counters persist
				sliceReports[i] += e.Run(seg).Reports
			}
			perSlice[i] = e.Stats()
			return nil
		})
		if err != nil {
			return "", err
		}
		for _, seg := range segs {
			symbols += int64(len(seg))
		}
		for i, s := range perSlice {
			reports += sliceReports[i]
			st.DFAStates += s.DFAStates
			st.Fallbacks += s.Fallbacks
			st.CacheHits += s.CacheHits
			st.CacheMisses += s.CacheMisses
			st.CacheEvictions += s.CacheEvictions
		}
	}
	return fmt.Sprintf("%s: %d states, %d symbols, %d reports, %d DFA states, %d fallbacks\n",
			name, a.NumStates(), symbols, reports, st.DFAStates, st.Fallbacks) +
			fmt.Sprintf("transition cache: %.2f%% hit rate, %.4f evictions/lookup\n",
				st.HitRate()*100, st.EvictionRate()),
		nil
}
