// Suite-wide `-j 1` ≡ `-j N` ≡ `-segments K` guarantee: for every
// benchmark and all three engines, the output lines `azoo run` prints
// must be byte-identical at every worker count and every segment count —
// and `-engine prefilter` must print exactly the nfa engine's line at
// every combination. The format strings and per-engine accounting below
// mirror cmdRun in cmd/azoo/main.go exactly — if that output changes,
// this test must change with it.
package automatazoo_test

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"automatazoo/internal/automata"
	"automatazoo/internal/core"
	"automatazoo/internal/dfa"
	"automatazoo/internal/parallel"
	"automatazoo/internal/partition"
	"automatazoo/internal/prefilter"
	"automatazoo/internal/segment"
	"automatazoo/internal/stats"
)

func TestRunOutputByteIdenticalAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("generates and scans the full suite at several worker/segment counts")
	}
	cfg := core.Config{Scale: 0.01, InputBytes: 30_000, Seed: 0xe1}
	workers := runtime.NumCPU()
	if workers < 2 {
		workers = 2
	}
	// The (workers × segments) matrix, all compared against the (1, 1)
	// baseline. Explicit -segments bypasses the auto size floor, so the
	// 30 KB suite streams really are split; segments=1 pins the exact
	// historical path, odd counts produce uneven tail chunks.
	variants := []struct{ j, segs int }{
		{1, 3},
		{1, 5},
		{workers, 1},
		{workers, 3},
	}
	for _, bench := range core.All() {
		bench := bench
		t.Run(bench.Name, func(t *testing.T) {
			a, segs, err := bench.Build(cfg)
			if err != nil {
				t.Fatalf("Build: %v", err)
			}

			seqNFA := nfaLine(bench.Name, a, stats.ObserveSegments(a, segs, nil, nil))
			var seqDFA string
			if a.NumCounters() == 0 {
				// The dfa engine rejects counter automata at any -j, exactly
				// as Hyperscan skips such rules.
				seqDFA, err = dfaLines(bench.Name, a, segs, 1, 1)
				if err != nil {
					t.Fatal(err)
				}
			}

			for _, v := range variants {
				var dyn stats.Dynamic
				if v.segs > 1 {
					dyn, _, err = stats.ObserveStreams(context.Background(), a, segs,
						stats.StreamOptions{Workers: v.j, Segments: v.segs})
				} else if v.j > 1 {
					dyn, err = stats.ObserveSegmentsParallel(context.Background(), a, segs, v.j, nil, nil)
				} else {
					dyn = stats.ObserveSegments(a, segs, nil, nil)
				}
				if err != nil {
					t.Fatal(err)
				}
				if got := nfaLine(bench.Name, a, dyn); got != seqNFA {
					t.Errorf("nfa output differs:\n -j 1: %q\n -j %d -segments %d: %q",
						seqNFA, v.j, v.segs, got)
				}

				// -engine prefilter: same scan paths with the two-stage
				// engine behind the factory; the printed line must equal the
				// nfa baseline at every (workers × segments) combination.
				pdyn, err := prefilterDynamic(a, segs, v.j, v.segs)
				if err != nil {
					t.Fatal(err)
				}
				if got := nfaLine(bench.Name, a, pdyn); got != seqNFA {
					t.Errorf("prefilter output differs:\n nfa -j 1: %q\n prefilter -j %d -segments %d: %q",
						seqNFA, v.j, v.segs, got)
				}

				if a.NumCounters() > 0 {
					continue
				}
				got, err := dfaLines(bench.Name, a, segs, v.j, v.segs)
				if err != nil {
					t.Fatal(err)
				}
				if got != seqDFA {
					t.Errorf("dfa output differs:\n -j 1: %q\n -j %d -segments %d: %q",
						seqDFA, v.j, v.segs, got)
				}
			}
		})
	}
}

// prefilterDynamic mirrors cmdRun's -engine prefilter dispatch: the same
// ObserveStreams / ObserveSegmentsParallelHooked / ObserveSegmentsHooked
// paths, with the prefilter factory in the hooks.
func prefilterDynamic(a *automata.Automaton, segs [][]byte, workers, segments int) (stats.Dynamic, error) {
	h := stats.Hooks{NewEngine: func(sub *automata.Automaton) (segment.Engine, error) {
		return prefilter.New(sub)
	}}
	switch {
	case segments > 1:
		dyn, _, err := stats.ObserveStreams(context.Background(), a, segs,
			stats.StreamOptions{Workers: workers, Segments: segments, Hooks: h})
		return dyn, err
	case workers > 1:
		return stats.ObserveSegmentsParallelHooked(context.Background(), a, segs, workers, h)
	default:
		return stats.ObserveSegmentsHooked(a, segs, h)
	}
}

// nfaLine formats cmdRun's nfa-engine output line.
func nfaLine(name string, a *automata.Automaton, dyn stats.Dynamic) string {
	return fmt.Sprintf("%s: %d states, %d symbols, %d reports (%.6f/sym), active set %.2f\n",
		name, a.NumStates(), dyn.Symbols, dyn.Reports, dyn.ReportRate, dyn.ActiveSet)
}

// dfaScan mirrors cmdRun's dfaScanStream: one RunChecked when the stream
// is unsegmented, otherwise a chunked scan with a capture/restore handoff
// at every segment boundary (per-stream stats restart per chunk; cache
// counters persist across the handoff).
func dfaScan(e *dfa.Engine, seg []byte, k int) (symbols, reports int64, err error) {
	if k <= 1 {
		st, err := e.RunChecked(seg)
		return st.Symbols, st.Reports, err
	}
	bounds := segment.Bounds(int64(len(seg)), k)
	for ci := 0; ci < k; ci++ {
		if err := e.RestoreState(e.CaptureState()); err != nil {
			return symbols, reports, err
		}
		st, rerr := e.RunChecked(seg[bounds[ci]:bounds[ci+1]])
		symbols += st.Symbols
		reports += st.Reports
		if rerr != nil {
			return symbols, reports, rerr
		}
	}
	return symbols, reports, nil
}

// dfaLines formats cmdRun's dfa-engine output lines, reproducing its
// -j 1 path (one whole-automaton engine), its -j N path
// (component-partitioned slice engines on the worker pool, statistics
// summed), and the -segments K chunked resume inside either.
func dfaLines(name string, a *automata.Automaton, segs [][]byte, workers, segments int) (string, error) {
	var symbols, reports int64
	var st dfa.Stats
	if workers == 1 {
		e, err := dfa.New(a)
		if err != nil {
			return "", err
		}
		for _, seg := range segs {
			e.Reset()
			k := segment.Resolve(int64(len(seg)), segments, 1, 0)
			sym, rep, err := dfaScan(e, seg, k)
			if err != nil {
				return "", err
			}
			symbols += sym
			reports += rep
		}
		st = e.Stats()
	} else {
		plan := partition.ForWorkers(a, workers)
		perSlice := make([]dfa.Stats, plan.Passes())
		sliceReports := make([]int64, plan.Passes())
		err := parallel.ForEach(context.Background(), workers, plan.Passes(), func(i int) error {
			sub, err := plan.Extract(i)
			if err != nil {
				return err
			}
			e, err := dfa.New(sub)
			if err != nil {
				return err
			}
			for _, seg := range segs {
				e.Reset() // clears per-run Symbols/Reports; cache counters persist
				k := segment.Resolve(int64(len(seg)), segments, workers, 0)
				_, rep, err := dfaScan(e, seg, k)
				if err != nil {
					return err
				}
				sliceReports[i] += rep
			}
			perSlice[i] = e.Stats()
			return nil
		})
		if err != nil {
			return "", err
		}
		for _, seg := range segs {
			symbols += int64(len(seg))
		}
		for i, s := range perSlice {
			reports += sliceReports[i]
			st.DFAStates += s.DFAStates
			st.Fallbacks += s.Fallbacks
			st.CacheHits += s.CacheHits
			st.CacheMisses += s.CacheMisses
			st.CacheEvictions += s.CacheEvictions
		}
	}
	return fmt.Sprintf("%s: %d states, %d symbols, %d reports, %d DFA states, %d fallbacks\n",
			name, a.NumStates(), symbols, reports, st.DFAStates, st.Fallbacks) +
			fmt.Sprintf("transition cache: %.2f%% hit rate, %.4f evictions/lookup\n",
				st.HitRate()*100, st.EvictionRate()),
		nil
}
