// Segment-parallel scan throughput on one multi-MB input stream.
// `make bench-segments` runs these; the seg=1 / seg=N ratio is the
// segment-parallel speedup. The acceptance bar for the segment layer is
// >=1.5x at seg=4 on this workload (EXPERIMENTS.md "Scaling on large
// streams" walks through reading the numbers).
package automatazoo_test

import (
	"context"
	"fmt"
	"testing"

	"automatazoo/internal/automata"
	"automatazoo/internal/charset"
	"automatazoo/internal/randx"
	"automatazoo/internal/segment"
)

// keywordChains builds a keyword-search automaton: n chains of length k,
// each an all-input-start head followed by k-1 positional states, with a
// report on the tail. Sparse frontiers (only heads plus in-flight partial
// matches are active) make this the segment layer's best case: warmup
// converges in a handful of bytes, so every speculative segment commits.
func keywordChains(rng *randx.Rand, n, k int) *automata.Automaton {
	b := automata.NewBuilder()
	for i := 0; i < n; i++ {
		prev := automata.StateID(0)
		for j := 0; j < k; j++ {
			sym := byte('a' + rng.Intn(26))
			start := automata.StartNone
			if j == 0 {
				start = automata.StartAllInput
			}
			id := b.AddSTE(charset.Single(sym), start)
			if j > 0 {
				b.AddEdge(prev, id)
			}
			prev = id
		}
		b.SetReport(prev, int32(i))
	}
	return b.MustBuild()
}

// benchSegCounts is the segment counts benchmarked: off, and the
// acceptance point at 4.
var benchSegCounts = []int{1, 4}

// BenchmarkSegmentScan measures segment.Run on one 4 MiB stream through a
// 48-keyword automaton: the seg=1 row is the sequential master scan, the
// seg=4 row splits the same stream across four speculative workers and
// stitches. Both rows go through segment.Run so the harness overhead is
// identical and the ratio isolates the segmentation win.
func BenchmarkSegmentScan(b *testing.B) {
	rng := randx.New(97)
	a := keywordChains(rng, 48, 8)
	input := make([]byte, 4<<20)
	for i := range input {
		input[i] = byte('a' + rng.Intn(26))
	}
	for _, segs := range benchSegCounts {
		segs := segs
		b.Run(fmt.Sprintf("seg=%d", segs), func(b *testing.B) {
			b.SetBytes(int64(len(input)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := segment.Run(context.Background(), a, input, segment.Options{
					Segments: segs,
					Workers:  segs,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Stats.Symbols != int64(len(input)) {
					b.Fatalf("short scan: %d of %d symbols", res.Stats.Symbols, len(input))
				}
			}
		})
	}
}
